//! The columnar message plane: flat `f32` row buffers shared by the Pregel
//! and MapReduce shuffles.
//!
//! Most GNN traffic is fixed-width: a layer's `apply_edge` output is always
//! `msg_dim` floats. Boxing each such row in a per-message heap object (a
//! `Vec<f32>` inside an enum) costs one allocation per edge per layer —
//! exactly the overhead the paper's shuffle-bound analysis says dominates
//! full-graph inference. This module provides the allocation-free
//! alternative: rows live contiguously in [`RowBlock`]s, move between
//! workers as flat `memcpy`s, and — when the step's aggregator is
//! associative — are **fused** into per-destination accumulator rows at the
//! sender ([`FusedSlotShard`]), shrinking shuffle volume and peak memory
//! from O(E·d) to O(V·d).
//!
//! # Determinism contract
//!
//! The plane follows `crate::par`'s rules exactly:
//!
//! - [`RowArena::seal`] scatters shards in ascending sender order, each
//!   shard in emission order — the delivery order of a serial sender loop;
//! - [`FusedSlotShard`] folds a sender's rows per destination slot in
//!   emission order with **copy-on-first** semantics (the first row is
//!   copied, not folded into an identity), so a fused partial is bit-equal
//!   to the fold the legacy per-message combiner would have produced;
//! - the destination merge (see the Pregel engine) folds sender partials
//!   per slot in ascending sender order, again copy-on-first.
//!
//! Together these make the fused path bit-identical to the legacy
//! materialize-then-combine path for every worker and thread count.
//!
//! # Out-of-core spilling
//!
//! Both inter-superstep inbox stores — the materialized [`RowArena`] and
//! the merged fused accumulators ([`FusedRows`]) — are backed by
//! [`SpillableRows`]: a flat `f32` row store that, under a per-worker
//! [`SpillPolicy`] byte budget, pages its rows to a temp file with plain
//! `std::fs` (rows are fixed-width and position-addressed, so a page is a
//! seek + read) and keeps only a bounded window resident. Consumers drain
//! slots in ascending order, so the window streams forward through the
//! file exactly once per superstep.
//!
//! **Spill determinism contract**: spilling never changes a bit. All
//! folding (scatter order, copy-on-first, ascending-sender merges) happens
//! *before* rows reach the store, and `f32` lanes round-trip the file
//! through their exact IEEE-754 bit patterns (`to_le_bytes`/
//! `from_le_bytes`), so a spilled run is bit-identical to the unconstrained
//! in-memory run for every budget, worker count, and thread count. Only
//! the *residency* accounting changes: `resident_bytes()` reports the
//! bounded window (plus always-resident offsets/counts) and
//! `spilled_bytes()` reports what lives on disk — the two planes engines
//! and plans report separately.

use crate::codec::{varint_len, Decode, Encode, WireReader, WireWriter};
use crate::{Error, FxHashMap, Result};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wire length of one columnar row record's payload, shared by both
/// engines so their `message_bytes` accounting stays directly comparable:
/// framed like a legacy raw-embedding message (`tag + varint(dim) +
/// dim·f32`), plus a fold-count varint when the row is a fused partial.
/// Callers add their own addressing (destination varint, shuffle record
/// overhead).
pub fn row_payload_len(dim: usize, count: Option<u32>) -> usize {
    1 + varint_len(dim as u64) + dim * 4 + count.map_or(0, |c| varint_len(c as u64))
}

/// Uniquifies spill file names within a process (workers seal in
/// parallel; supersteps reuse nothing).
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Out-of-core configuration for one worker's inbox stores: where spill
/// files go and how many bytes of row data may stay resident per store.
///
/// The budget is a *soft* target: a single slot whose rows exceed it still
/// loads in full (the window grows for that read), and the always-resident
/// metadata (offsets, counts) is charged on top. Offsets/counts are 4
/// bytes per slot versus `4·dim` per row, so the metadata is never the
/// term that breaks a memory cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillPolicy {
    /// Directory spill files are created in (created on demand; files are
    /// removed when their store drops).
    pub dir: PathBuf,
    /// Resident byte budget per backing store (per worker, per plane).
    pub budget_bytes: u64,
}

impl SpillPolicy {
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: u64) -> Self {
        SpillPolicy {
            dir: dir.into(),
            budget_bytes,
        }
    }
}

/// An open spill file plus its path; the path is unlinked when the last
/// handle drops. Shared (`Arc`) between a live store and its checkpoint
/// snapshots — sealed spill data is immutable, so snapshots read the same
/// bytes through their own windows instead of rewriting the file.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    handle: std::fs::File,
}

impl SpillFile {
    /// Contextualise an I/O failure with the file path and the operation —
    /// an injected or real disk fault must be diagnosable from the error
    /// alone.
    fn read_err(&self, e: std::io::Error) -> Error {
        Error::Io(format!(
            "spill windowed read-back failed at {}: {e}",
            self.path.display()
        ))
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn write_err(path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("spill write-out failed at {}: {e}", path.display()))
}

/// How a [`SpillableRows`] holds its data: fully in memory, or on disk
/// with a bounded resident window.
#[derive(Debug)]
enum RowStore {
    Resident(Vec<f32>),
    Spilled {
        file: Arc<SpillFile>,
        /// Currently resident rows `[win_start, win_start + win_len)`.
        window: Vec<f32>,
        /// Reused byte staging buffer for window loads (allocated once,
        /// not per reload — reloads happen per slot in the drain loop).
        scratch: Vec<u8>,
        win_start: usize,
        win_len: usize,
        /// Budgeted window size in rows (≥ 1).
        win_cap: usize,
        /// Largest window the drain can ever hold, in rows — the modeled
        /// residency. Seeded at construction with the caller-declared
        /// largest single read (`max_read_rows`), so the memory model
        /// covers an oversized slot *before* the drain reaches it, and
        /// raised further if an even larger read actually happens.
        high_water: usize,
    },
}

/// A flat store of fixed-width `f32` rows that can live out of core.
///
/// Built from a fully-folded flat buffer (sealing/merging happens before
/// rows reach the store — see the module docs' spill determinism
/// contract). Under a [`SpillPolicy`] whose budget the buffer exceeds, the
/// rows are written to a temp file once and read back through a bounded
/// window; otherwise the buffer stays resident and reads are plain
/// slices. Reads are bit-identical in both modes.
#[derive(Debug)]
pub struct SpillableRows {
    dim: usize,
    n_rows: usize,
    store: RowStore,
}

impl SpillableRows {
    /// A fully resident store (no spill policy, or the data fit the
    /// budget).
    pub fn resident(dim: usize, data: Vec<f32>) -> Self {
        let n_rows = data.len().checked_div(dim).unwrap_or(0);
        SpillableRows {
            dim,
            n_rows,
            store: RowStore::Resident(data),
        }
    }

    /// Wrap `data`, spilling it to a file under `spill.dir` when its bytes
    /// exceed `spill.budget_bytes`. The write is one sequential pass; the
    /// resident window is sized to the budget (at least one row).
    ///
    /// `max_read_rows` declares the largest single [`SpillableRows::rows`]
    /// range the consumer will request (e.g. the fattest slot of an
    /// arena). The window must grow to cover such a read, so it is folded
    /// into the residency high-water up front — the memory model then
    /// charges the worst-case window at seal time instead of discovering
    /// it mid-drain (the budget is a soft target; see [`SpillPolicy`]).
    ///
    /// Note the build-side transient: `data` is the fully-folded flat
    /// buffer, so the *host* process briefly holds the whole thing before
    /// the spill write. The budget governs the simulated per-worker
    /// residency model (what `check_memory`, estimates, and admission
    /// gate on); a page-wise seal that bounds the host transient too is
    /// the ROADMAP follow-on.
    pub fn new(
        dim: usize,
        data: Vec<f32>,
        spill: Option<&SpillPolicy>,
        max_read_rows: usize,
    ) -> Result<Self> {
        let policy = match spill {
            Some(p) if dim > 0 && (data.len() * 4) as u64 > p.budget_bytes => p,
            _ => return Ok(SpillableRows::resident(dim, data)),
        };
        let n_rows = data.len() / dim;
        std::fs::create_dir_all(&policy.dir).map_err(|e| write_err(&policy.dir, e))?;
        let path = policy.dir.join(format!(
            "inferturbo-spill-{}-{}.rows",
            std::process::id(),
            SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let handle = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| write_err(&path, e))?;
        // From here on the file exists: wrap it so any failed write still
        // unlinks it on drop.
        let file = Arc::new(SpillFile { path, handle });
        {
            // Exact IEEE-754 bit patterns on disk: the read-back path is
            // bit-identical to never having spilled.
            let mut w = BufWriter::with_capacity(1 << 16, &file.handle);
            for &x in &data {
                w.write_all(&x.to_le_bytes())
                    .map_err(|e| write_err(&file.path, e))?;
            }
            w.flush().map_err(|e| write_err(&file.path, e))?;
        }
        drop(data);
        let win_cap = ((policy.budget_bytes / 4) as usize / dim).max(1);
        Ok(SpillableRows {
            dim,
            n_rows,
            store: RowStore::Spilled {
                file,
                window: Vec::new(),
                scratch: Vec::new(),
                win_start: 0,
                win_len: 0,
                win_cap,
                high_water: win_cap.max(max_read_rows).min(n_rows),
            },
        })
    }

    /// An independent logical copy for checkpointing. Resident data is
    /// cloned; spilled data *shares* the immutable spill file (`Arc`) with
    /// a fresh, empty window — the checkpoint reuses the already-written
    /// file instead of copying it, and the file survives until the last
    /// sharer drops. Reads from a snapshot are bit-identical to reads from
    /// the original.
    pub fn snapshot(&self) -> SpillableRows {
        let store = match &self.store {
            RowStore::Resident(d) => RowStore::Resident(d.clone()),
            RowStore::Spilled {
                file,
                win_cap,
                high_water,
                ..
            } => RowStore::Spilled {
                file: Arc::clone(file),
                window: Vec::new(),
                scratch: Vec::new(),
                win_start: 0,
                win_len: 0,
                win_cap: *win_cap,
                high_water: *high_water,
            },
        };
        SpillableRows {
            dim: self.dim,
            n_rows: self.n_rows,
            store,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Unwrap a fully resident store's flat data; `None` when spilled.
    /// The wire path sends resident data only — merged results cross a
    /// process boundary *before* the parent-side spill decision, so a
    /// spilled store here means a protocol bug, not a recoverable state.
    pub fn into_resident(self) -> Option<Vec<f32>> {
        match self.store {
            RowStore::Resident(d) => Some(d),
            RowStore::Spilled { .. } => None,
        }
    }

    /// Total rows in the store (resident + spilled).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the rows live on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, RowStore::Spilled { .. })
    }

    /// Modeled resident bytes of the row data: everything when in memory,
    /// the (high-water) window when spilled.
    pub fn resident_bytes(&self) -> u64 {
        match &self.store {
            RowStore::Resident(d) => (d.len() * 4) as u64,
            RowStore::Spilled { high_water, .. } => (*high_water * self.dim * 4) as u64,
        }
    }

    /// Bytes living in the spill file (0 when resident).
    pub fn spilled_bytes(&self) -> u64 {
        match &self.store {
            RowStore::Resident(_) => 0,
            RowStore::Spilled { .. } => (self.n_rows * self.dim * 4) as u64,
        }
    }

    /// The flat rows `[lo, hi)` (`(hi - lo) * dim` floats). When spilled,
    /// loads the covering window from disk if it is not already resident;
    /// sequential ascending access streams the file once.
    pub fn rows(&mut self, lo: usize, hi: usize) -> Result<&[f32]> {
        debug_assert!(lo <= hi && hi <= self.n_rows, "row range out of bounds");
        if lo == hi {
            return Ok(&[]);
        }
        let dim = self.dim;
        match &mut self.store {
            RowStore::Resident(data) => Ok(&data[lo * dim..hi * dim]),
            RowStore::Spilled {
                file,
                window,
                scratch,
                win_start,
                win_len,
                win_cap,
                high_water,
                ..
            } => {
                let need = hi - lo;
                if lo < *win_start || hi > *win_start + *win_len {
                    // Load a fresh window at `lo`: budget-sized, grown to
                    // cover an oversized single request, clipped at EOF.
                    // `window` and `scratch` keep their allocations across
                    // reloads — the drain loop reloads once per window, so
                    // steady-state paging allocates nothing.
                    let load = need.max(*win_cap).min(self.n_rows - lo);
                    window.clear();
                    window.resize(load * dim, 0.0);
                    (&file.handle)
                        .seek(SeekFrom::Start((lo * dim * 4) as u64))
                        .map_err(|e| file.read_err(e))?;
                    scratch.clear();
                    scratch.resize(load * dim * 4, 0);
                    (&file.handle)
                        .read_exact(scratch)
                        .map_err(|e| file.read_err(e))?;
                    for (x, ch) in window.iter_mut().zip(scratch.chunks_exact(4)) {
                        *x = f32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
                    }
                    *win_start = lo;
                    *win_len = load;
                    *high_water = (*high_water).max(load);
                }
                let off = (lo - *win_start) * dim;
                Ok(&window[off..off + need * dim])
            }
        }
    }
}

/// Guard for the `u32` offset/cursor space of one worker's arena. At
/// huge-graph `E·d` scale this must be a typed, catchable error on the
/// engine result path — a release build must never wrap the counting
/// scatter's cursors into silent row loss.
fn check_u32_row_capacity(total_rows: usize) -> Result<()> {
    if total_rows > u32::MAX as usize {
        return Err(Error::Capacity(format!(
            "row arena overflow: {total_rows} rows for one worker exceed the u32 offset space \
             ({} max); shard the graph across more workers",
            u32::MAX
        )));
    }
    Ok(())
}

/// Declares that a step's messages are fixed-width `f32` rows. A vertex
/// program (or batch kernel) returning one of these opts the step into the
/// columnar plane; variable-width messages (broadcast refs, control
/// records) keep riding the legacy typed plane alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageLayout {
    /// Row width in `f32` lanes. Must match every row sent that step.
    pub dim: usize,
}

/// A commutative + associative lane-wise fold over fixed-width rows — the
/// [`Combiner`](../../inferturbo_pregel/vertex/trait.Combiner.html) trait
/// generalised to the columnar plane. When a step provides one, the engine
/// fuses gather into scatter: senders accumulate rows per destination
/// instead of materialising one row per edge.
///
/// Implementations must be pure lane-wise folds (`acc[i] ⊕= row[i]`): the
/// engine relies on fold order per lane being the only source of float
/// variation, and pins that order via the determinism contract above.
pub trait FusedAggregator: Send + Sync {
    /// The identity element accumulator lanes are pre-filled with (e.g.
    /// `0.0` for sum, `-inf` for max). Because accumulation is
    /// copy-on-first, the identity never reaches results — it only fills
    /// slots that receive no messages, which consumers detect via a zero
    /// count.
    fn identity(&self) -> f32;

    /// Fold `row` into `acc` lane-wise. `acc.len() == row.len()`.
    fn accumulate(&self, acc: &mut [f32], row: &[f32]);

    /// The wire-encodable description of this fold, if it has one.
    ///
    /// A fused exchange that crosses a process boundary cannot ship the
    /// aggregator itself — only a closed set of lane-wise folds
    /// ([`AggKind`]) travels on the wire, and the remote merge replays the
    /// fold from that tag. Returning `Some(kind)` asserts that `kind`'s
    /// fold is **bit-identical** to this aggregator's `accumulate` for
    /// every input (each `AggKind` fold is a per-lane-independent
    /// operation, so unrolling or vectorisation cannot change its bits).
    /// The default `None` keeps custom aggregators working everywhere:
    /// a transport that cannot encode the fold merges fused partials
    /// locally instead (see `inferturbo_cluster::transport`).
    fn wire_kind(&self) -> Option<AggKind> {
        None
    }
}

/// The closed set of lane-wise folds a fused exchange can name on the
/// wire. Each variant is a per-lane-independent operation whose result is
/// bit-identical to the engine-side kernels it stands in for:
///
/// - [`AggKind::Sum`]: `acc[i] += row[i]` — bit-equal to
///   `row_axpy(acc, row, 1.0)` (multiplying by `1.0` is the identity on
///   every IEEE-754 value the planes carry);
/// - [`AggKind::Max`]: `if row[i] > acc[i] { acc[i] = row[i] }` — the
///   exact tie/NaN-keeping comparison of `row_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Sum,
    Max,
}

impl Encode for AggKind {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            AggKind::Sum => 0,
            AggKind::Max => 1,
        });
    }
}

impl Decode for AggKind {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(AggKind::Sum),
            1 => Ok(AggKind::Max),
            tag => Err(Error::Codec(format!("unknown AggKind tag {tag}"))),
        }
    }
}

impl FusedAggregator for AggKind {
    fn identity(&self) -> f32 {
        match self {
            AggKind::Sum => 0.0,
            AggKind::Max => f32::NEG_INFINITY,
        }
    }

    fn accumulate(&self, acc: &mut [f32], row: &[f32]) {
        debug_assert_eq!(acc.len(), row.len());
        match self {
            AggKind::Sum => {
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a += b;
                }
            }
            AggKind::Max => {
                for (a, &b) in acc.iter_mut().zip(row) {
                    if b > *a {
                        *a = b;
                    }
                }
            }
        }
    }

    fn wire_kind(&self) -> Option<AggKind> {
        Some(*self)
    }
}

/// A flat row-major spool of fixed-width rows — the storage unit of the
/// columnar plane. Pushing appends `dim` floats; no per-row allocation.
#[derive(Debug, Clone, Default)]
pub struct RowBlock {
    dim: usize,
    data: Vec<f32>,
}

impl RowBlock {
    pub fn new(dim: usize) -> Self {
        RowBlock {
            dim,
            data: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Append every row of `other` in order — one flat `memcpy`, the
    /// barrier-merge fast path.
    pub fn append(&mut self, other: &RowBlock) {
        debug_assert_eq!(self.dim, other.dim, "append width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Clear and adopt a (possibly new) row width, keeping the allocation —
    /// the scratch-pool reuse path.
    pub fn reset(&mut self, dim: usize) {
        self.data.clear();
        self.dim = dim;
    }

    /// Rebuild a block from its flat parts (the wire-decode path). `data`
    /// must hold a whole number of `dim`-wide rows.
    pub fn from_parts(dim: usize, data: Vec<f32>) -> Result<RowBlock> {
        if dim == 0 && !data.is_empty() {
            return Err(Error::Codec("row block with dim 0 carries data".into()));
        }
        if dim != 0 && !data.len().is_multiple_of(dim) {
            return Err(Error::Codec(format!(
                "row block data ({} floats) is not a multiple of dim {dim}",
                data.len()
            )));
        }
        Ok(RowBlock { dim, data })
    }
}

/// One sender's columnar outbox shard for one destination worker:
/// destination slots plus their rows, in emission order.
#[derive(Debug, Clone)]
pub struct RowShard {
    pub slots: Vec<u32>,
    pub rows: RowBlock,
}

impl RowShard {
    pub fn new(dim: usize) -> Self {
        RowShard {
            slots: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn push(&mut self, slot: u32, row: &[f32]) {
        self.slots.push(slot);
        self.rows.push_row(row);
    }

    /// Restore the shard to the state `RowShard::new(dim)` would produce,
    /// keeping both allocations — the scratch-pool reuse path for the
    /// materialized (non-fused) columnar plane.
    pub fn reset(&mut self, dim: usize) {
        self.slots.clear();
        self.rows.reset(dim);
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Wire framing for one sender's materialized shard: `varint dim`,
/// `varint n`, `n` destination-slot varints, then `n·dim` raw-bit `f32`
/// lanes. Row data round-trips through exact IEEE-754 little-endian bit
/// patterns, so an encode→decode cycle is bit-identical.
impl Encode for RowShard {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.rows.dim() as u64);
        w.put_varint(self.slots.len() as u64);
        for &s in &self.slots {
            w.put_varint(s as u64);
        }
        for &x in self.rows.data() {
            w.put_f32(x);
        }
    }
}

impl Decode for RowShard {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let dim = decode_dim(r)?;
        let n = r.get_varint()? as usize;
        let slots = decode_slots(r, n)?;
        let data = decode_rows(r, n, dim)?;
        Ok(RowShard {
            slots,
            rows: RowBlock::from_parts(dim, data)?,
        })
    }
}

/// Decode a row width, rejecting values that could not have been produced
/// by an honest encoder (a frame cannot describe more lanes than it has
/// bytes for).
fn decode_dim(r: &mut WireReader<'_>) -> Result<usize> {
    let dim = r.get_varint()? as usize;
    if dim > u32::MAX as usize {
        return Err(Error::Codec(format!("row dim {dim} exceeds u32 range")));
    }
    Ok(dim)
}

/// Decode `n` slot/key varints, validating `n` against the bytes actually
/// present before allocating (each varint is at least one byte).
fn decode_slots(r: &mut WireReader<'_>, n: usize) -> Result<Vec<u32>> {
    if n > r.remaining() {
        return Err(Error::Codec(format!(
            "shard claims {n} records but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let s = r.get_varint()?;
        if s > u32::MAX as u64 {
            return Err(Error::Codec(format!("slot {s} exceeds u32 range")));
        }
        slots.push(s as u32);
    }
    Ok(slots)
}

/// Decode `n · dim` f32 lanes, validating the byte budget before
/// allocating.
fn decode_rows(r: &mut WireReader<'_>, n: usize, dim: usize) -> Result<Vec<f32>> {
    let lanes = n
        .checked_mul(dim)
        .filter(|&l| l.checked_mul(4).is_some_and(|b| b <= r.remaining()))
        .ok_or_else(|| {
            Error::Codec(format!(
                "shard claims {n}x{dim} rows but only {} bytes remain",
                r.remaining()
            ))
        })?;
    let mut data = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        data.push(r.get_f32()?);
    }
    Ok(data)
}

/// A destination worker's sealed columnar inbox: every pending row in one
/// flat (possibly spilled) store, slot `s`'s rows at row indices
/// `offsets[s]..offsets[s+1]` in delivery order. The row analogue of the
/// Pregel `InboxArena`. The offsets always stay resident; the row data
/// pages through a [`SpillableRows`] window under a [`SpillPolicy`].
#[derive(Debug)]
pub struct RowArena {
    dim: usize,
    data: SpillableRows,
    /// Per-slot row ranges; empty until the first seal.
    offsets: Vec<u32>,
}

impl RowArena {
    pub fn empty(dim: usize) -> Self {
        RowArena {
            dim,
            data: SpillableRows::resident(dim, Vec::new()),
            offsets: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total rows in the arena.
    pub fn n_rows(&self) -> usize {
        self.data.n_rows()
    }

    /// Resident bytes of the arena: offsets plus the in-memory row data
    /// (the bounded window, when spilled).
    pub fn resident_bytes(&self) -> u64 {
        self.data.resident_bytes() + (self.offsets.len() * 4) as u64
    }

    /// Bytes of row data living in the spill file (0 when fully resident).
    pub fn spilled_bytes(&self) -> u64 {
        self.data.spilled_bytes()
    }

    /// Number of rows pending for `slot`. Slots past the sealed range —
    /// vertices added after the last superstep — have no rows yet.
    pub fn count(&self, slot: usize) -> usize {
        if slot + 1 >= self.offsets.len() {
            0
        } else {
            (self.offsets[slot + 1] - self.offsets[slot]) as usize
        }
    }

    /// An independent logical copy for checkpointing: resident offsets are
    /// cloned, row data snapshots through [`SpillableRows::snapshot`]
    /// (spilled data shares the immutable file).
    pub fn snapshot(&self) -> RowArena {
        RowArena {
            dim: self.dim,
            data: self.data.snapshot(),
            offsets: self.offsets.clone(),
        }
    }

    /// Rows pending for `slot`, flat (`count(slot) * dim` floats), in
    /// delivery order. `&mut` because a spilled arena may need to page the
    /// covering window in; draining slots in ascending order streams the
    /// spill file exactly once.
    pub fn rows(&mut self, slot: usize) -> Result<&[f32]> {
        if slot + 1 >= self.offsets.len() {
            return Ok(&[]);
        }
        let lo = self.offsets[slot] as usize;
        let hi = self.offsets[slot + 1] as usize;
        self.data.rows(lo, hi)
    }

    /// Build the arena from per-sender shards. Shards are scattered in
    /// ascending sender order and each shard in emission order,
    /// reproducing exactly the delivery order of a serial sender loop.
    /// Under `spill`, row data beyond the budget pages to disk — spilling
    /// happens after the scatter, so delivery order and bits are
    /// unaffected.
    pub fn seal(
        dim: usize,
        n_slots: usize,
        shards: &[RowShard],
        spill: Option<&SpillPolicy>,
    ) -> Result<Self> {
        let total: usize = shards.iter().map(RowShard::len).sum();
        check_u32_row_capacity(total)?;
        let mut offsets = vec![0u32; n_slots + 1];
        for sh in shards {
            for &s in &sh.slots {
                offsets[s as usize + 1] += 1;
            }
        }
        for i in 0..n_slots {
            offsets[i + 1] += offsets[i];
        }
        debug_assert_eq!(offsets[n_slots] as usize, total);
        let mut data = vec![0.0f32; total * dim];
        // `offsets` doubles as the scatter cursor (see `crate::group`).
        for sh in shards {
            for (i, &s) in sh.slots.iter().enumerate() {
                let at = offsets[s as usize] as usize;
                data[at * dim..(at + 1) * dim].copy_from_slice(sh.rows.row(i));
                offsets[s as usize] += 1;
            }
        }
        offsets.copy_within(0..n_slots, 1);
        offsets[0] = 0;
        // The fattest slot bounds the largest single read the drain will
        // issue; declaring it up front makes the residency model charge
        // the worst-case window at seal time (a hub slot wider than the
        // budget still loads whole).
        let max_slot_rows = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        Ok(RowArena {
            dim,
            data: SpillableRows::new(dim, data, spill, max_slot_rows)?,
            offsets,
        })
    }

    /// Rebuild an arena from wire parts: the sealed per-slot `offsets`
    /// (length `n_slots + 1`, monotone, starting at 0) and the flat
    /// scattered row data (`offsets.last() * dim` floats). Applies `spill`
    /// exactly like [`RowArena::seal`] — the seal happened on the other
    /// side of the wire, the residency decision happens here.
    pub fn from_parts(
        dim: usize,
        offsets: Vec<u32>,
        data: Vec<f32>,
        spill: Option<&SpillPolicy>,
    ) -> Result<Self> {
        let total = match offsets.as_slice() {
            [] => return Err(Error::Codec("row arena offsets are empty".into())),
            [first, .., last] if *first == 0 => *last as usize,
            [0] => 0,
            _ => return Err(Error::Codec("row arena offsets do not start at 0".into())),
        };
        if offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(Error::Codec("row arena offsets are not monotone".into()));
        }
        if data.len() != total * dim {
            return Err(Error::Codec(format!(
                "row arena data ({} floats) does not match {total} rows of dim {dim}",
                data.len()
            )));
        }
        let max_slot_rows = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        Ok(RowArena {
            dim,
            data: SpillableRows::new(dim, data, spill, max_slot_rows)?,
            offsets,
        })
    }

    /// Split a freshly sealed, fully resident arena into its wire parts
    /// (`offsets`, flat row data) for shipping back across a process
    /// boundary. Fails on a spilled arena: the wire side seals without a
    /// spill policy, residency is the receiving side's decision.
    pub fn into_wire_parts(self) -> Result<(Vec<u32>, Vec<f32>)> {
        let data = self.data.into_resident().ok_or_else(|| {
            Error::Internal("cannot ship a spilled row arena over the wire".into())
        })?;
        Ok((self.offsets, data))
    }
}

/// One sender's **fused** outbox shard for one destination worker: instead
/// of one row per message, one accumulator row per destination slot the
/// sender touched. The dense `slot → row` index trades O(n_slots) memory
/// for branch-free lookups — destination partitions are `V / workers`
/// slots, far below the hash-map's constant factors.
///
/// Accumulation is copy-on-first: the first row for a slot is copied
/// verbatim, later rows fold through the [`FusedAggregator`]. `counts`
/// tracks the number of raw messages folded per touched slot (mean
/// normalisation reads it); `keys` remembers first-touch order, which is
/// the shard's flush/merge order.
pub struct FusedSlotShard {
    dim: usize,
    /// slot → index into `keys`/`counts`/`rows`; `u32::MAX` = untouched.
    index: Vec<u32>,
    pub keys: Vec<u32>,
    pub counts: Vec<u32>,
    pub rows: RowBlock,
}

impl FusedSlotShard {
    pub fn new(dim: usize, n_slots: usize) -> Self {
        FusedSlotShard {
            dim,
            index: vec![u32::MAX; n_slots],
            keys: Vec::new(),
            counts: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Restore the shard to the state `FusedSlotShard::new(dim, n_slots)`
    /// would produce, keeping every allocation. Touched index entries are
    /// cleared sparsely through `keys` — O(touched), not O(n_slots) — which
    /// is the whole point of pooling these shards across supersteps: a
    /// fresh shard pays a dense `u32` fill per (sender × destination) every
    /// superstep, O(W·V) across a worker set.
    pub fn reset(&mut self, dim: usize, n_slots: usize) {
        for &k in &self.keys {
            self.index[k as usize] = u32::MAX;
        }
        self.keys.clear();
        self.counts.clear();
        self.rows.reset(dim);
        self.dim = dim;
        if self.index.len() < n_slots {
            self.index.resize(n_slots, u32::MAX);
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rebuild a shard from decoded wire parts, **for merging only**: the
    /// dense `slot → row` index is left empty, so
    /// [`FusedSlotShard::accumulate`] / [`FusedSlotShard::reset`] must not
    /// be called on the result. [`FusedRows::merge`] reads only
    /// `keys`/`counts`/`rows`, which is exactly what the wire carries.
    pub fn from_wire(dim: usize, keys: Vec<u32>, counts: Vec<u32>, rows: RowBlock) -> Result<Self> {
        if keys.len() != counts.len() || keys.len() != rows.len() || rows.dim() != dim {
            return Err(Error::Codec(format!(
                "fused shard parts disagree: {} keys, {} counts, {} rows of dim {}",
                keys.len(),
                counts.len(),
                rows.len(),
                rows.dim()
            )));
        }
        Ok(FusedSlotShard {
            dim,
            index: Vec::new(),
            keys,
            counts,
            rows,
        })
    }

    /// Fold `row` (carrying `count` raw messages) into slot's accumulator.
    /// Returns `true` when this was the slot's first touch (callers track
    /// per-slot side data, e.g. the original destination id, on it).
    pub fn accumulate(
        &mut self,
        slot: u32,
        row: &[f32],
        count: u32,
        agg: &dyn FusedAggregator,
    ) -> bool {
        debug_assert_eq!(row.len(), self.dim);
        let at = self.index[slot as usize];
        if at == u32::MAX {
            self.index[slot as usize] = self.keys.len() as u32;
            self.keys.push(slot);
            self.counts.push(count);
            self.rows.push_row(row);
            true
        } else {
            agg.accumulate(self.rows.row_mut(at as usize), row);
            self.counts[at as usize] += count;
            false
        }
    }
}

/// Wire framing for one sender's fused shard: `varint dim`, `varint n`,
/// `n` first-touch key varints, `n` count varints, then `n·dim` raw-bit
/// `f32` lanes. The dense `slot → row` index is *not* shipped — it is a
/// sender-side accumulation structure; the receiver only merges. Decoding
/// therefore yields a merge-only shard (see [`FusedSlotShard::from_wire`]).
impl Encode for FusedSlotShard {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.dim as u64);
        w.put_varint(self.keys.len() as u64);
        for &k in &self.keys {
            w.put_varint(k as u64);
        }
        for &c in &self.counts {
            w.put_varint(c as u64);
        }
        for &x in self.rows.data() {
            w.put_f32(x);
        }
    }
}

impl Decode for FusedSlotShard {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let dim = decode_dim(r)?;
        let n = r.get_varint()? as usize;
        let keys = decode_slots(r, n)?;
        let counts = decode_slots(r, n)?;
        let data = decode_rows(r, n, dim)?;
        FusedSlotShard::from_wire(dim, keys, counts, RowBlock::from_parts(dim, data)?)
    }
}

/// A destination worker's merged fused inbox: one accumulator row per slot
/// (identity-filled), `counts[s]` raw messages folded into slot `s` (0 =
/// no messages). O(V·d) resident regardless of edge count — and under a
/// [`SpillPolicy`] even the V·d accumulators page to disk, leaving only
/// the counts (4 B/slot) plus a bounded row window resident.
#[derive(Debug)]
pub struct FusedRows {
    dim: usize,
    acc: SpillableRows,
    pub counts: Vec<u32>,
}

impl FusedRows {
    pub fn empty(dim: usize) -> Self {
        FusedRows {
            dim,
            acc: SpillableRows::resident(dim, Vec::new()),
            counts: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Resident bytes: counts plus the in-memory accumulator rows (the
    /// bounded window, when spilled).
    pub fn resident_bytes(&self) -> u64 {
        self.acc.resident_bytes() + (self.counts.len() * 4) as u64
    }

    /// Bytes of accumulator rows living in the spill file (0 when fully
    /// resident).
    pub fn spilled_bytes(&self) -> u64 {
        self.acc.spilled_bytes()
    }

    /// Raw messages folded into `slot` (0 for untouched or out-of-range
    /// slots).
    pub fn count(&self, slot: usize) -> u32 {
        self.counts.get(slot).copied().unwrap_or(0)
    }

    /// An independent logical copy for checkpointing (see
    /// [`SpillableRows::snapshot`]).
    pub fn snapshot(&self) -> FusedRows {
        FusedRows {
            dim: self.dim,
            acc: self.acc.snapshot(),
            counts: self.counts.clone(),
        }
    }

    /// Accumulator row of `slot`; empty slice for out-of-range slots
    /// (vertices added after the merge), whose count is 0. `&mut` because
    /// a spilled store may need to page the covering window in.
    pub fn row(&mut self, slot: usize) -> Result<&[f32]> {
        if self.dim == 0 || slot >= self.acc.n_rows() {
            return Ok(&[]);
        }
        self.acc.rows(slot, slot + 1)
    }

    /// Merge per-sender fused shards into one dense accumulator set, in
    /// ascending sender order, each shard in first-touch order — the exact
    /// order the legacy combiner path delivers partials, so results are
    /// bit-identical to it. Copy-on-first: a slot's first partial is
    /// copied, later partials fold through `agg`. The fully-folded
    /// accumulators then spill under `spill` — fold order is fixed before
    /// any byte reaches disk.
    pub fn merge(
        dim: usize,
        n_slots: usize,
        shards: &[FusedSlotShard],
        agg: &dyn FusedAggregator,
        spill: Option<&SpillPolicy>,
    ) -> Result<Self> {
        let mut acc = vec![agg.identity(); n_slots * dim];
        let mut counts = vec![0u32; n_slots];
        for sh in shards {
            debug_assert_eq!(sh.dim, dim);
            for (i, &slot) in sh.keys.iter().enumerate() {
                let s = slot as usize;
                let dst = &mut acc[s * dim..(s + 1) * dim];
                if counts[s] == 0 {
                    dst.copy_from_slice(sh.rows.row(i));
                } else {
                    agg.accumulate(dst, sh.rows.row(i));
                }
                counts[s] += sh.counts[i];
            }
        }
        Ok(FusedRows {
            dim,
            // Fused accumulators read one slot row at a time.
            acc: SpillableRows::new(dim, acc, spill, 1)?,
            counts,
        })
    }

    /// Rebuild a merged inbox from wire parts: per-slot message `counts`
    /// and the dense accumulator rows (`counts.len() * dim` floats).
    /// Applies `spill` exactly like [`FusedRows::merge`] — the fold
    /// happened on the other side of the wire, residency is decided here.
    pub fn from_parts(
        dim: usize,
        counts: Vec<u32>,
        acc: Vec<f32>,
        spill: Option<&SpillPolicy>,
    ) -> Result<Self> {
        if acc.len() != counts.len() * dim {
            return Err(Error::Codec(format!(
                "fused rows data ({} floats) does not match {} slots of dim {dim}",
                acc.len(),
                counts.len()
            )));
        }
        Ok(FusedRows {
            dim,
            acc: SpillableRows::new(dim, acc, spill, 1)?,
            counts,
        })
    }

    /// Split a freshly merged, fully resident inbox into its wire parts
    /// (`counts`, dense accumulator rows). Fails on a spilled store — see
    /// [`RowArena::into_wire_parts`].
    pub fn into_wire_parts(self) -> Result<(Vec<u32>, Vec<f32>)> {
        let acc = self.acc.into_resident().ok_or_else(|| {
            Error::Internal("cannot ship spilled fused rows over the wire".into())
        })?;
        Ok((self.counts, acc))
    }
}

/// A sender-side fused spool keyed by sparse `u64` keys — the batch
/// engine's analogue of [`FusedSlotShard`] (shuffle keys are wire ids, not
/// dense slots, so the index is a hash map).
pub struct FusedKeyShard {
    dim: usize,
    index: FxHashMap<u64, u32>,
    pub keys: Vec<u64>,
    pub counts: Vec<u32>,
    pub rows: RowBlock,
}

impl FusedKeyShard {
    pub fn new(dim: usize) -> Self {
        FusedKeyShard {
            dim,
            index: FxHashMap::default(),
            keys: Vec::new(),
            counts: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn accumulate(&mut self, key: u64, row: &[f32], count: u32, agg: &dyn FusedAggregator) {
        debug_assert_eq!(row.len(), self.dim);
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let at = *e.get() as usize;
                agg.accumulate(self.rows.row_mut(at), row);
                self.counts[at] += count;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.keys.len() as u32);
                self.keys.push(key);
                self.counts.push(count);
                self.rows.push_row(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl FusedAggregator for Sum {
        fn identity(&self) -> f32 {
            0.0
        }
        fn accumulate(&self, acc: &mut [f32], row: &[f32]) {
            for (a, r) in acc.iter_mut().zip(row) {
                *a += r;
            }
        }
    }

    #[test]
    fn row_block_round_trips_rows() {
        let mut b = RowBlock::new(3);
        b.push_row(&[1.0, 2.0, 3.0]);
        b.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
        b.row_mut(0)[2] = 9.0;
        assert_eq!(b.data(), &[1.0, 2.0, 9.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn arena_seal_matches_serial_delivery_order() {
        // Sender 0 emits (slot1, a), (slot0, b); sender 1 emits (slot1, c).
        let mut s0 = RowShard::new(2);
        s0.push(1, &[1.0, 1.0]);
        s0.push(0, &[2.0, 2.0]);
        let mut s1 = RowShard::new(2);
        s1.push(1, &[3.0, 3.0]);
        let mut arena = RowArena::seal(2, 3, &[s0, s1], None).unwrap();
        assert_eq!(arena.count(0), 1);
        assert_eq!(arena.rows(0).unwrap(), &[2.0, 2.0]);
        // slot 1: sender 0's row before sender 1's
        assert_eq!(arena.count(1), 2);
        assert_eq!(arena.rows(1).unwrap(), &[1.0, 1.0, 3.0, 3.0]);
        assert_eq!(arena.count(2), 0);
        assert_eq!(arena.rows(2).unwrap(), &[] as &[f32]);
        // slots beyond the sealed range read as empty
        assert_eq!(arena.count(7), 0);
    }

    #[test]
    fn row_shard_reset_is_indistinguishable_from_fresh() {
        let mut pooled = RowShard::new(3);
        pooled.push(2, &[1.0, 2.0, 3.0]);
        pooled.push(0, &[4.0, 5.0, 6.0]);
        // Reuse with a different row width.
        pooled.reset(2);
        let mut fresh = RowShard::new(2);
        for sh in [&mut pooled, &mut fresh] {
            sh.push(5, &[1.5, -0.0]);
            sh.push(1, &[0.5, 1.0]);
        }
        assert_eq!(pooled.slots, fresh.slots);
        assert_eq!(pooled.rows.data(), fresh.rows.data());
        assert_eq!(pooled.rows.dim(), 2);
    }

    #[test]
    fn fused_shard_copy_on_first_then_folds() {
        let mut sh = FusedSlotShard::new(2, 4);
        sh.accumulate(2, &[1.0, -0.0], 1, &Sum);
        // first touch copies bit-exactly, including -0.0
        assert_eq!(sh.rows.row(0)[1].to_bits(), (-0.0f32).to_bits());
        sh.accumulate(2, &[2.0, 1.0], 1, &Sum);
        sh.accumulate(0, &[5.0, 5.0], 3, &Sum);
        assert_eq!(sh.keys, vec![2, 0]); // first-touch order
        assert_eq!(sh.counts, vec![2, 3]);
        assert_eq!(sh.rows.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn fused_merge_orders_senders_and_sums_counts() {
        let mut s0 = FusedSlotShard::new(1, 3);
        s0.accumulate(1, &[1.0], 2, &Sum);
        let mut s1 = FusedSlotShard::new(1, 3);
        s1.accumulate(1, &[10.0], 1, &Sum);
        s1.accumulate(0, &[7.0], 1, &Sum);
        let mut merged = FusedRows::merge(1, 3, &[s0, s1], &Sum, None).unwrap();
        assert_eq!(merged.row(1).unwrap(), &[11.0]);
        assert_eq!(merged.count(1), 3);
        assert_eq!(merged.row(0).unwrap(), &[7.0]);
        assert_eq!(merged.count(0), 1);
        assert_eq!(merged.count(2), 0);
        // out-of-range slots (vertices added later) are empty
        assert_eq!(merged.count(9), 0);
        assert_eq!(merged.row(9).unwrap(), &[] as &[f32]);
    }

    #[test]
    fn fused_shard_reset_is_indistinguishable_from_fresh() {
        let mut pooled = FusedSlotShard::new(3, 5);
        pooled.accumulate(4, &[1.0, 2.0, 3.0], 1, &Sum);
        pooled.accumulate(0, &[4.0, 5.0, 6.0], 2, &Sum);
        // Reuse with a different dim and a larger slot count.
        pooled.reset(2, 8);
        let mut fresh = FusedSlotShard::new(2, 8);
        for sh in [&mut pooled, &mut fresh] {
            sh.accumulate(7, &[1.5, -0.0], 1, &Sum);
            sh.accumulate(7, &[0.5, 1.0], 1, &Sum);
            sh.accumulate(4, &[9.0, 9.0], 3, &Sum);
        }
        assert_eq!(pooled.keys, fresh.keys);
        assert_eq!(pooled.counts, fresh.counts);
        assert_eq!(pooled.rows.data(), fresh.rows.data());
        // Shrinking the slot count keeps the larger index (slots beyond
        // n_slots are simply never addressed).
        pooled.reset(2, 1);
        pooled.accumulate(0, &[1.0, 1.0], 1, &Sum);
        assert_eq!(pooled.keys, vec![0]);
    }

    fn tiny_spill(budget: u64) -> SpillPolicy {
        SpillPolicy::new(std::env::temp_dir().join("inferturbo-rows-tests"), budget)
    }

    /// Feature-like values with awkward bit patterns (-0.0, subnormals,
    /// irrational fractions) so a lossy round-trip would be caught.
    fn odd_bits(n: usize, dim: usize) -> Vec<f32> {
        (0..n * dim)
            .map(|i| match i % 5 {
                0 => -0.0,
                1 => f32::from_bits(1), // smallest subnormal
                2 => (i as f32 * 0.37).sin(),
                3 => -(i as f32) / 7.0,
                _ => i as f32 * 1e-30,
            })
            .collect()
    }

    #[test]
    fn spillable_rows_read_back_bit_identical() {
        let dim = 3;
        let data = odd_bits(40, dim);
        let mut resident = SpillableRows::resident(dim, data.clone());
        // Budget of 5 rows' bytes: 40 rows force a spill with many window
        // reloads, including backwards re-reads and an oversized request.
        let mut spilled = SpillableRows::new(dim, data, Some(&tiny_spill(5 * dim as u64 * 4)), 1)
            .expect("spill write");
        assert!(spilled.is_spilled());
        assert_eq!(spilled.spilled_bytes(), 40 * dim as u64 * 4);
        assert!(spilled.resident_bytes() < resident.resident_bytes());
        for (lo, hi) in [(0, 1), (0, 40), (7, 19), (39, 40), (3, 3), (2, 9)] {
            let a: Vec<u32> = resident
                .rows(lo, hi)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = spilled
                .rows(lo, hi)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "range {lo}..{hi} diverged after spill");
        }
    }

    fn spill_path(rows: &SpillableRows) -> PathBuf {
        match &rows.store {
            RowStore::Spilled { file, .. } => file.path.clone(),
            _ => panic!("expected a spilled store"),
        }
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let policy = tiny_spill(4);
        let rows = SpillableRows::new(2, odd_bits(6, 2), Some(&policy), 1).unwrap();
        let path = spill_path(&rows);
        assert!(path.exists());
        drop(rows);
        assert!(!path.exists(), "drop must clean the spill file");
    }

    #[test]
    fn snapshot_shares_the_spill_file_and_reads_bit_identical() {
        let dim = 2;
        let data = odd_bits(20, dim);
        let mut live = SpillableRows::new(dim, data, Some(&tiny_spill(3 * dim as u64 * 4)), 1)
            .expect("spill write");
        let mut snap = live.snapshot();
        assert_eq!(spill_path(&live), spill_path(&snap), "one file, shared");
        // Interleaved reads through two independent windows agree bit-wise.
        for (lo, hi) in [(0, 4), (15, 20), (7, 8), (0, 20)] {
            let a: Vec<u32> = live
                .rows(lo, hi)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = snap
                .rows(lo, hi)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "range {lo}..{hi} diverged in the snapshot");
        }
        // The file survives until the LAST sharer drops.
        let path = spill_path(&live);
        drop(live);
        assert!(path.exists(), "snapshot must keep the shared file alive");
        assert_eq!(
            snap.rows(2, 5).unwrap().len(),
            3 * dim,
            "snapshot reads after the original dropped"
        );
        drop(snap);
        assert!(!path.exists(), "last sharer cleans the file");
    }

    #[test]
    fn arena_and_fused_snapshots_are_independent_copies() {
        let dim = 2;
        let mut sh = RowShard::new(dim);
        for i in 0..12u32 {
            sh.push(i % 4, &[i as f32, -(i as f32)]);
        }
        let mut arena = RowArena::seal(dim, 4, &[sh], Some(&tiny_spill(8))).unwrap();
        let mut arena_snap = arena.snapshot();
        let mut fsh = FusedSlotShard::new(dim, 4);
        for i in 0..12u32 {
            fsh.accumulate(i % 4, &[i as f32, 1.0], 1, &Sum);
        }
        let mut fused = FusedRows::merge(dim, 4, &[fsh], &Sum, Some(&tiny_spill(8))).unwrap();
        let mut fused_snap = fused.snapshot();
        for s in 0..4 {
            assert_eq!(arena.rows(s).unwrap(), arena_snap.rows(s).unwrap());
            assert_eq!(fused.row(s).unwrap(), fused_snap.row(s).unwrap());
            assert_eq!(fused.count(s), fused_snap.count(s));
        }
    }

    #[test]
    fn spill_write_failure_carries_path_and_operation() {
        // Point the spill dir at an existing FILE: create_dir_all fails,
        // and the error must name the path and the write-out operation.
        let bogus = std::env::temp_dir().join("inferturbo-rows-not-a-dir");
        std::fs::write(&bogus, b"x").unwrap();
        let policy = SpillPolicy::new(&bogus, 4);
        let err = SpillableRows::new(2, odd_bits(6, 2), Some(&policy), 1).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("write-out") && msg.contains("inferturbo-rows-not-a-dir"),
            "{msg}"
        );
        assert!(err.is_transient(), "spill I/O failures are retryable");
        std::fs::remove_file(&bogus).ok();
    }

    #[test]
    fn oversized_slot_window_is_charged_at_seal_time() {
        // One hub slot holds 20 of 24 rows while the budget covers 2: the
        // drain must grow its window for that slot, and the residency
        // model must charge that worst case at seal time — before any
        // read — so the engine's memory gate sees it at the barrier.
        let dim = 2;
        let mut sh = RowShard::new(dim);
        for i in 0..24u32 {
            let slot = if i < 20 { 3 } else { i % 3 };
            sh.push(slot, &[i as f32, -(i as f32)]);
        }
        let arena = RowArena::seal(dim, 5, &[sh], Some(&tiny_spill(2 * dim as u64 * 4))).unwrap();
        assert!(arena.spilled_bytes() > 0);
        let at_seal = arena.resident_bytes();
        assert!(
            at_seal >= 20 * dim as u64 * 4,
            "hub window must be pre-charged: {at_seal}"
        );
        // Draining (including the hub slot) never exceeds the seal-time
        // charge.
        let mut arena = arena;
        for s in 0..5 {
            arena.rows(s).unwrap();
        }
        assert_eq!(arena.resident_bytes(), at_seal);
    }

    #[test]
    fn arena_seal_under_budget_stays_resident() {
        let mut sh = RowShard::new(2);
        sh.push(0, &[1.0, 2.0]);
        let arena = RowArena::seal(2, 1, &[sh], Some(&tiny_spill(1 << 20))).unwrap();
        assert_eq!(arena.spilled_bytes(), 0);
    }

    #[test]
    fn spilled_arena_reads_bit_identical_to_resident() {
        let dim = 2;
        let feats = odd_bits(30, dim);
        let mut shards: Vec<RowShard> = (0..3).map(|_| RowShard::new(dim)).collect();
        for i in 0..30 {
            shards[i % 3].push((i % 7) as u32, &feats[i * dim..(i + 1) * dim]);
        }
        let shards2 = shards.clone();
        let mut plain = RowArena::seal(dim, 7, &shards, None).unwrap();
        let mut spilled = RowArena::seal(dim, 7, &shards2, Some(&tiny_spill(16))).unwrap();
        assert!(spilled.spilled_bytes() > 0);
        assert!(spilled.resident_bytes() < plain.resident_bytes());
        for s in 0..8 {
            assert_eq!(plain.count(s), spilled.count(s));
            let a: Vec<u32> = plain.rows(s).unwrap().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = spilled
                .rows(s)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "slot {s} diverged after spill");
        }
    }

    #[test]
    fn spilled_fused_merge_bit_identical_to_resident() {
        let dim = 3;
        let feats = odd_bits(24, dim);
        let mut shards: Vec<FusedSlotShard> = (0..2).map(|_| FusedSlotShard::new(dim, 9)).collect();
        for i in 0..24 {
            shards[i % 2].accumulate((i % 9) as u32, &feats[i * dim..(i + 1) * dim], 1, &Sum);
        }
        // Rebuild identical shards for the second merge (shards are
        // consumed by reference but folding mutated nothing — reuse).
        let mut plain = FusedRows::merge(dim, 9, &shards, &Sum, None).unwrap();
        let mut spilled = FusedRows::merge(dim, 9, &shards, &Sum, Some(&tiny_spill(8))).unwrap();
        assert!(spilled.spilled_bytes() > 0);
        assert!(spilled.resident_bytes() < plain.resident_bytes());
        for s in 0..10 {
            assert_eq!(plain.count(s), spilled.count(s));
            let a: Vec<u32> = plain.row(s).unwrap().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = spilled
                .row(s)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "slot {s} diverged after spill");
        }
    }

    #[test]
    fn u32_row_capacity_boundary_is_a_typed_error() {
        // Exactly u32::MAX rows still index; one more must surface as a
        // catchable Error::Capacity, never a silent release-mode wrap.
        assert!(check_u32_row_capacity(u32::MAX as usize).is_ok());
        let err = check_u32_row_capacity(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, Error::Capacity(_)), "{err:?}");
        assert!(err.to_string().contains("row arena overflow"), "{err}");
    }

    #[test]
    fn fused_key_shard_folds_sparse_keys() {
        let mut sh = FusedKeyShard::new(2);
        sh.accumulate(1 << 40, &[1.0, 2.0], 1, &Sum);
        sh.accumulate(7, &[5.0, 5.0], 1, &Sum);
        sh.accumulate(1 << 40, &[1.0, 1.0], 2, &Sum);
        assert_eq!(sh.keys, vec![1 << 40, 7]);
        assert_eq!(sh.counts, vec![3, 1]);
        assert_eq!(sh.rows.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn row_shard_wire_round_trip_is_bit_identical() {
        let dim = 3;
        let feats = odd_bits(5, dim);
        let mut sh = RowShard::new(dim);
        for (i, row) in feats.chunks(dim).enumerate() {
            sh.push((i * 2) as u32, row);
        }
        let back = RowShard::from_bytes(&sh.to_bytes()).unwrap();
        assert_eq!(back.slots, sh.slots);
        assert_eq!(back.rows.dim(), dim);
        let a: Vec<u32> = sh.rows.data().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = back.rows.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
        // Empty shard — zero rows, the dim still survives the trip.
        let empty = RowShard::from_bytes(&RowShard::new(7).to_bytes()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.rows.dim(), 7);
    }

    #[test]
    fn fused_shard_wire_round_trip_preserves_merge_inputs() {
        let dim = 2;
        let mut sh = FusedSlotShard::new(dim, 6);
        sh.accumulate(4, &[1.0, -0.0], 1, &Sum);
        sh.accumulate(0, &[2.0, 3.0], 2, &Sum);
        sh.accumulate(4, &[0.5, 0.5], 1, &Sum);
        let back = FusedSlotShard::from_bytes(&sh.to_bytes()).unwrap();
        assert_eq!(back.keys, sh.keys);
        assert_eq!(back.counts, sh.counts);
        assert_eq!(back.dim(), dim);
        let a: Vec<u32> = sh.rows.data().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = back.rows.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
        // A decoded (merge-only) shard merges identically to the original.
        let mut from_local = FusedRows::merge(dim, 6, &[sh], &Sum, None).unwrap();
        let mut from_wire = FusedRows::merge(dim, 6, &[back], &Sum, None).unwrap();
        for s in 0..6 {
            assert_eq!(from_local.count(s), from_wire.count(s));
            assert_eq!(from_local.row(s).unwrap(), from_wire.row(s).unwrap());
        }
    }

    #[test]
    fn shard_decode_rejects_lying_lengths() {
        // A frame claiming more records than it has bytes must fail with a
        // typed codec error before any allocation matches the claim.
        let mut w = WireWriter::new();
        w.put_varint(4); // dim
        w.put_varint(1 << 40); // n: absurd
        let err = RowShard::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err:?}");
        // Truncated row data: 2 rows claimed, bytes for less than one.
        let mut w = WireWriter::new();
        w.put_varint(4);
        w.put_varint(2);
        w.put_varint(0);
        w.put_varint(1);
        w.put_f32(1.0);
        let err = RowShard::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err:?}");
        // Trailing garbage after a valid shard is rejected too.
        let mut bytes = RowShard::new(2).to_bytes();
        bytes.push(0);
        assert!(RowShard::from_bytes(&bytes).is_err());
    }

    #[test]
    fn agg_kind_matches_hand_rolled_aggregators_bitwise() {
        // AggKind::Sum must fold bit-identically to the test Sum above
        // (same `+=` lane loop), and Max must keep acc on ties the way
        // tensor::row_max does.
        let rows: [&[f32]; 3] = [&[1.0, -0.0, 0.3], &[-2.0, 0.0, 0.7], &[0.5, -0.0, 0.1]];
        let mut a = vec![AggKind::Sum.identity(); 3];
        let mut b = vec![Sum.identity(); 3];
        for r in rows {
            AggKind::Sum.accumulate(&mut a, r);
            Sum.accumulate(&mut b, r);
        }
        let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb);
        let mut m = vec![AggKind::Max.identity(); 2];
        AggKind::Max.accumulate(&mut m, &[-0.0, 5.0]);
        AggKind::Max.accumulate(&mut m, &[0.0, 5.0]); // tie: keep acc
        assert_eq!(m[0].to_bits(), (-0.0f32).to_bits());
        assert_eq!(m[1], 5.0);
        // Wire round-trip of the kind tag itself.
        for k in [AggKind::Sum, AggKind::Max] {
            assert_eq!(AggKind::from_bytes(&k.to_bytes()).unwrap(), k);
            assert_eq!(k.wire_kind(), Some(k));
        }
        assert!(AggKind::from_bytes(&[9]).is_err());
    }

    #[test]
    fn arena_wire_parts_round_trip_bit_identical() {
        let dim = 2;
        let feats = odd_bits(10, dim);
        let mut sh = RowShard::new(dim);
        for (i, row) in feats.chunks(dim).enumerate() {
            sh.push((i % 3) as u32, row);
        }
        let mut direct = RowArena::seal(dim, 3, &[sh.clone()], None).unwrap();
        let (offsets, data) = RowArena::seal(dim, 3, &[sh], None)
            .unwrap()
            .into_wire_parts()
            .unwrap();
        // Rebuild with a spill policy tight enough to force out-of-core:
        // from_parts must apply residency like seal does.
        let mut rebuilt = RowArena::from_parts(dim, offsets, data, Some(&tiny_spill(8))).unwrap();
        assert!(rebuilt.spilled_bytes() > 0);
        for s in 0..4 {
            assert_eq!(direct.count(s), rebuilt.count(s));
            let a: Vec<u32> = direct
                .rows(s)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = rebuilt
                .rows(s)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "slot {s} diverged through wire parts");
        }
    }

    #[test]
    fn arena_from_parts_rejects_malformed_offsets() {
        // Non-monotone offsets.
        assert!(RowArena::from_parts(1, vec![0, 2, 1], vec![0.0; 2], None).is_err());
        // Offsets not starting at zero.
        assert!(RowArena::from_parts(1, vec![1, 2], vec![0.0; 2], None).is_err());
        // Data length disagreeing with the last offset.
        assert!(RowArena::from_parts(1, vec![0, 2], vec![0.0; 3], None).is_err());
        // Empty offsets are meaningless even with no data.
        assert!(RowArena::from_parts(1, vec![], vec![], None).is_err());
        // Degenerate but valid: zero slots, zero rows.
        assert!(RowArena::from_parts(1, vec![0], vec![], None).is_ok());
    }

    #[test]
    fn fused_wire_parts_round_trip_bit_identical() {
        let dim = 3;
        let feats = odd_bits(12, dim);
        let mut sh = FusedSlotShard::new(dim, 5);
        for (i, row) in feats.chunks(dim).enumerate() {
            sh.accumulate((i % 5) as u32, row, 1, &AggKind::Sum);
        }
        let mut direct = FusedRows::merge(dim, 5, &[sh], &AggKind::Sum, None).unwrap();
        let (counts, acc) = direct.snapshot().into_wire_parts().unwrap();
        let mut rebuilt = FusedRows::from_parts(dim, counts, acc, Some(&tiny_spill(8))).unwrap();
        assert!(rebuilt.spilled_bytes() > 0);
        for s in 0..5 {
            assert_eq!(direct.count(s), rebuilt.count(s));
            let a: Vec<u32> = direct.row(s).unwrap().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = rebuilt
                .row(s)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "slot {s} diverged through wire parts");
        }
        // Mismatched counts/data length is a typed codec error.
        assert!(FusedRows::from_parts(3, vec![1, 1], vec![0.0; 5], None).is_err());
    }

    #[test]
    fn spilled_stores_refuse_to_ship_as_wire_parts() {
        let arena = {
            let mut sh = RowShard::new(2);
            for i in 0..10u32 {
                sh.push(i % 3, &[i as f32, 0.5]);
            }
            RowArena::seal(2, 3, &[sh], Some(&tiny_spill(8))).unwrap()
        };
        assert!(arena.spilled_bytes() > 0);
        assert!(arena.into_wire_parts().is_err());
    }
}
