//! The columnar message plane: flat `f32` row buffers shared by the Pregel
//! and MapReduce shuffles.
//!
//! Most GNN traffic is fixed-width: a layer's `apply_edge` output is always
//! `msg_dim` floats. Boxing each such row in a per-message heap object (a
//! `Vec<f32>` inside an enum) costs one allocation per edge per layer —
//! exactly the overhead the paper's shuffle-bound analysis says dominates
//! full-graph inference. This module provides the allocation-free
//! alternative: rows live contiguously in [`RowBlock`]s, move between
//! workers as flat `memcpy`s, and — when the step's aggregator is
//! associative — are **fused** into per-destination accumulator rows at the
//! sender ([`FusedSlotShard`]), shrinking shuffle volume and peak memory
//! from O(E·d) to O(V·d).
//!
//! # Determinism contract
//!
//! The plane follows `crate::par`'s rules exactly:
//!
//! - [`RowArena::seal`] scatters shards in ascending sender order, each
//!   shard in emission order — the delivery order of a serial sender loop;
//! - [`FusedSlotShard`] folds a sender's rows per destination slot in
//!   emission order with **copy-on-first** semantics (the first row is
//!   copied, not folded into an identity), so a fused partial is bit-equal
//!   to the fold the legacy per-message combiner would have produced;
//! - the destination merge (see the Pregel engine) folds sender partials
//!   per slot in ascending sender order, again copy-on-first.
//!
//! Together these make the fused path bit-identical to the legacy
//! materialize-then-combine path for every worker and thread count.

use crate::codec::varint_len;
use crate::FxHashMap;

/// Wire length of one columnar row record's payload, shared by both
/// engines so their `message_bytes` accounting stays directly comparable:
/// framed like a legacy raw-embedding message (`tag + varint(dim) +
/// dim·f32`), plus a fold-count varint when the row is a fused partial.
/// Callers add their own addressing (destination varint, shuffle record
/// overhead).
pub fn row_payload_len(dim: usize, count: Option<u32>) -> usize {
    1 + varint_len(dim as u64) + dim * 4 + count.map_or(0, |c| varint_len(c as u64))
}

/// Declares that a step's messages are fixed-width `f32` rows. A vertex
/// program (or batch kernel) returning one of these opts the step into the
/// columnar plane; variable-width messages (broadcast refs, control
/// records) keep riding the legacy typed plane alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageLayout {
    /// Row width in `f32` lanes. Must match every row sent that step.
    pub dim: usize,
}

/// A commutative + associative lane-wise fold over fixed-width rows — the
/// [`Combiner`](../../inferturbo_pregel/vertex/trait.Combiner.html) trait
/// generalised to the columnar plane. When a step provides one, the engine
/// fuses gather into scatter: senders accumulate rows per destination
/// instead of materialising one row per edge.
///
/// Implementations must be pure lane-wise folds (`acc[i] ⊕= row[i]`): the
/// engine relies on fold order per lane being the only source of float
/// variation, and pins that order via the determinism contract above.
pub trait FusedAggregator: Send + Sync {
    /// The identity element accumulator lanes are pre-filled with (e.g.
    /// `0.0` for sum, `-inf` for max). Because accumulation is
    /// copy-on-first, the identity never reaches results — it only fills
    /// slots that receive no messages, which consumers detect via a zero
    /// count.
    fn identity(&self) -> f32;

    /// Fold `row` into `acc` lane-wise. `acc.len() == row.len()`.
    fn accumulate(&self, acc: &mut [f32], row: &[f32]);
}

/// A flat row-major spool of fixed-width rows — the storage unit of the
/// columnar plane. Pushing appends `dim` floats; no per-row allocation.
#[derive(Debug, Clone, Default)]
pub struct RowBlock {
    dim: usize,
    data: Vec<f32>,
}

impl RowBlock {
    pub fn new(dim: usize) -> Self {
        RowBlock {
            dim,
            data: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Append every row of `other` in order — one flat `memcpy`, the
    /// barrier-merge fast path.
    pub fn append(&mut self, other: &RowBlock) {
        debug_assert_eq!(self.dim, other.dim, "append width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Clear and adopt a (possibly new) row width, keeping the allocation —
    /// the scratch-pool reuse path.
    pub fn reset(&mut self, dim: usize) {
        self.data.clear();
        self.dim = dim;
    }
}

/// One sender's columnar outbox shard for one destination worker:
/// destination slots plus their rows, in emission order.
#[derive(Debug, Clone)]
pub struct RowShard {
    pub slots: Vec<u32>,
    pub rows: RowBlock,
}

impl RowShard {
    pub fn new(dim: usize) -> Self {
        RowShard {
            slots: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn push(&mut self, slot: u32, row: &[f32]) {
        self.slots.push(slot);
        self.rows.push_row(row);
    }

    /// Restore the shard to the state `RowShard::new(dim)` would produce,
    /// keeping both allocations — the scratch-pool reuse path for the
    /// materialized (non-fused) columnar plane.
    pub fn reset(&mut self, dim: usize) {
        self.slots.clear();
        self.rows.reset(dim);
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A destination worker's sealed columnar inbox: every pending row in one
/// flat buffer, slot `s`'s rows at row indices `offsets[s]..offsets[s+1]`
/// in delivery order. The row analogue of the Pregel `InboxArena`.
#[derive(Debug, Clone)]
pub struct RowArena {
    dim: usize,
    data: Vec<f32>,
    /// Per-slot row ranges; empty until the first seal.
    offsets: Vec<u32>,
}

impl RowArena {
    pub fn empty(dim: usize) -> Self {
        RowArena {
            dim,
            data: Vec::new(),
            offsets: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total rows in the arena.
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Resident bytes of the arena (rows + offsets).
    pub fn resident_bytes(&self) -> u64 {
        (self.data.len() * 4 + self.offsets.len() * 4) as u64
    }

    /// Number of rows pending for `slot`. Slots past the sealed range —
    /// vertices added after the last superstep — have no rows yet.
    pub fn count(&self, slot: usize) -> usize {
        if slot + 1 >= self.offsets.len() {
            0
        } else {
            (self.offsets[slot + 1] - self.offsets[slot]) as usize
        }
    }

    /// Rows pending for `slot`, flat (`count(slot) * dim` floats), in
    /// delivery order.
    pub fn rows(&self, slot: usize) -> &[f32] {
        if slot + 1 >= self.offsets.len() {
            &[]
        } else {
            let lo = self.offsets[slot] as usize * self.dim;
            let hi = self.offsets[slot + 1] as usize * self.dim;
            &self.data[lo..hi]
        }
    }

    /// Build the arena from per-sender shards. Shards are scattered in
    /// ascending sender order and each shard in emission order,
    /// reproducing exactly the delivery order of a serial sender loop.
    pub fn seal(dim: usize, n_slots: usize, shards: &[RowShard]) -> Self {
        let total: usize = shards.iter().map(RowShard::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "row arena overflow: {total} rows for one worker"
        );
        let mut offsets = vec![0u32; n_slots + 1];
        for sh in shards {
            for &s in &sh.slots {
                offsets[s as usize + 1] += 1;
            }
        }
        for i in 0..n_slots {
            offsets[i + 1] += offsets[i];
        }
        debug_assert_eq!(offsets[n_slots] as usize, total);
        let mut data = vec![0.0f32; total * dim];
        // `offsets` doubles as the scatter cursor (see `crate::group`).
        for sh in shards {
            for (i, &s) in sh.slots.iter().enumerate() {
                let at = offsets[s as usize] as usize;
                data[at * dim..(at + 1) * dim].copy_from_slice(sh.rows.row(i));
                offsets[s as usize] += 1;
            }
        }
        offsets.copy_within(0..n_slots, 1);
        offsets[0] = 0;
        RowArena { dim, data, offsets }
    }
}

/// One sender's **fused** outbox shard for one destination worker: instead
/// of one row per message, one accumulator row per destination slot the
/// sender touched. The dense `slot → row` index trades O(n_slots) memory
/// for branch-free lookups — destination partitions are `V / workers`
/// slots, far below the hash-map's constant factors.
///
/// Accumulation is copy-on-first: the first row for a slot is copied
/// verbatim, later rows fold through the [`FusedAggregator`]. `counts`
/// tracks the number of raw messages folded per touched slot (mean
/// normalisation reads it); `keys` remembers first-touch order, which is
/// the shard's flush/merge order.
pub struct FusedSlotShard {
    dim: usize,
    /// slot → index into `keys`/`counts`/`rows`; `u32::MAX` = untouched.
    index: Vec<u32>,
    pub keys: Vec<u32>,
    pub counts: Vec<u32>,
    pub rows: RowBlock,
}

impl FusedSlotShard {
    pub fn new(dim: usize, n_slots: usize) -> Self {
        FusedSlotShard {
            dim,
            index: vec![u32::MAX; n_slots],
            keys: Vec::new(),
            counts: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Restore the shard to the state `FusedSlotShard::new(dim, n_slots)`
    /// would produce, keeping every allocation. Touched index entries are
    /// cleared sparsely through `keys` — O(touched), not O(n_slots) — which
    /// is the whole point of pooling these shards across supersteps: a
    /// fresh shard pays a dense `u32` fill per (sender × destination) every
    /// superstep, O(W·V) across a worker set.
    pub fn reset(&mut self, dim: usize, n_slots: usize) {
        for &k in &self.keys {
            self.index[k as usize] = u32::MAX;
        }
        self.keys.clear();
        self.counts.clear();
        self.rows.reset(dim);
        self.dim = dim;
        if self.index.len() < n_slots {
            self.index.resize(n_slots, u32::MAX);
        }
    }

    /// Fold `row` (carrying `count` raw messages) into slot's accumulator.
    /// Returns `true` when this was the slot's first touch (callers track
    /// per-slot side data, e.g. the original destination id, on it).
    pub fn accumulate(
        &mut self,
        slot: u32,
        row: &[f32],
        count: u32,
        agg: &dyn FusedAggregator,
    ) -> bool {
        debug_assert_eq!(row.len(), self.dim);
        let at = self.index[slot as usize];
        if at == u32::MAX {
            self.index[slot as usize] = self.keys.len() as u32;
            self.keys.push(slot);
            self.counts.push(count);
            self.rows.push_row(row);
            true
        } else {
            agg.accumulate(self.rows.row_mut(at as usize), row);
            self.counts[at as usize] += count;
            false
        }
    }
}

/// A destination worker's merged fused inbox: one accumulator row per slot
/// (identity-filled), `counts[s]` raw messages folded into slot `s` (0 =
/// no messages). O(V·d) resident regardless of edge count.
#[derive(Debug, Clone)]
pub struct FusedRows {
    dim: usize,
    pub acc: Vec<f32>,
    pub counts: Vec<u32>,
}

impl FusedRows {
    pub fn empty(dim: usize) -> Self {
        FusedRows {
            dim,
            acc: Vec::new(),
            counts: Vec::new(),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Resident bytes (accumulators + counts).
    pub fn resident_bytes(&self) -> u64 {
        (self.acc.len() * 4 + self.counts.len() * 4) as u64
    }

    /// Raw messages folded into `slot` (0 for untouched or out-of-range
    /// slots).
    pub fn count(&self, slot: usize) -> u32 {
        self.counts.get(slot).copied().unwrap_or(0)
    }

    /// Accumulator row of `slot`; empty slice for out-of-range slots
    /// (vertices added after the merge), whose count is 0.
    pub fn row(&self, slot: usize) -> &[f32] {
        let lo = slot * self.dim;
        if lo + self.dim > self.acc.len() {
            &[]
        } else {
            &self.acc[lo..lo + self.dim]
        }
    }

    /// Merge per-sender fused shards into one dense accumulator set, in
    /// ascending sender order, each shard in first-touch order — the exact
    /// order the legacy combiner path delivers partials, so results are
    /// bit-identical to it. Copy-on-first: a slot's first partial is
    /// copied, later partials fold through `agg`.
    pub fn merge(
        dim: usize,
        n_slots: usize,
        shards: &[FusedSlotShard],
        agg: &dyn FusedAggregator,
    ) -> Self {
        let mut out = FusedRows {
            dim,
            acc: vec![agg.identity(); n_slots * dim],
            counts: vec![0u32; n_slots],
        };
        for sh in shards {
            debug_assert_eq!(sh.dim, dim);
            for (i, &slot) in sh.keys.iter().enumerate() {
                let s = slot as usize;
                let dst = &mut out.acc[s * dim..(s + 1) * dim];
                if out.counts[s] == 0 {
                    dst.copy_from_slice(sh.rows.row(i));
                } else {
                    agg.accumulate(dst, sh.rows.row(i));
                }
                out.counts[s] += sh.counts[i];
            }
        }
        out
    }
}

/// A sender-side fused spool keyed by sparse `u64` keys — the batch
/// engine's analogue of [`FusedSlotShard`] (shuffle keys are wire ids, not
/// dense slots, so the index is a hash map).
pub struct FusedKeyShard {
    dim: usize,
    index: FxHashMap<u64, u32>,
    pub keys: Vec<u64>,
    pub counts: Vec<u32>,
    pub rows: RowBlock,
}

impl FusedKeyShard {
    pub fn new(dim: usize) -> Self {
        FusedKeyShard {
            dim,
            index: FxHashMap::default(),
            keys: Vec::new(),
            counts: Vec::new(),
            rows: RowBlock::new(dim),
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn accumulate(&mut self, key: u64, row: &[f32], count: u32, agg: &dyn FusedAggregator) {
        debug_assert_eq!(row.len(), self.dim);
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let at = *e.get() as usize;
                agg.accumulate(self.rows.row_mut(at), row);
                self.counts[at] += count;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.keys.len() as u32);
                self.keys.push(key);
                self.counts.push(count);
                self.rows.push_row(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl FusedAggregator for Sum {
        fn identity(&self) -> f32 {
            0.0
        }
        fn accumulate(&self, acc: &mut [f32], row: &[f32]) {
            for (a, r) in acc.iter_mut().zip(row) {
                *a += r;
            }
        }
    }

    #[test]
    fn row_block_round_trips_rows() {
        let mut b = RowBlock::new(3);
        b.push_row(&[1.0, 2.0, 3.0]);
        b.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
        b.row_mut(0)[2] = 9.0;
        assert_eq!(b.data(), &[1.0, 2.0, 9.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn arena_seal_matches_serial_delivery_order() {
        // Sender 0 emits (slot1, a), (slot0, b); sender 1 emits (slot1, c).
        let mut s0 = RowShard::new(2);
        s0.push(1, &[1.0, 1.0]);
        s0.push(0, &[2.0, 2.0]);
        let mut s1 = RowShard::new(2);
        s1.push(1, &[3.0, 3.0]);
        let arena = RowArena::seal(2, 3, &[s0, s1]);
        assert_eq!(arena.count(0), 1);
        assert_eq!(arena.rows(0), &[2.0, 2.0]);
        // slot 1: sender 0's row before sender 1's
        assert_eq!(arena.count(1), 2);
        assert_eq!(arena.rows(1), &[1.0, 1.0, 3.0, 3.0]);
        assert_eq!(arena.count(2), 0);
        assert_eq!(arena.rows(2), &[] as &[f32]);
        // slots beyond the sealed range read as empty
        assert_eq!(arena.count(7), 0);
    }

    #[test]
    fn row_shard_reset_is_indistinguishable_from_fresh() {
        let mut pooled = RowShard::new(3);
        pooled.push(2, &[1.0, 2.0, 3.0]);
        pooled.push(0, &[4.0, 5.0, 6.0]);
        // Reuse with a different row width.
        pooled.reset(2);
        let mut fresh = RowShard::new(2);
        for sh in [&mut pooled, &mut fresh] {
            sh.push(5, &[1.5, -0.0]);
            sh.push(1, &[0.5, 1.0]);
        }
        assert_eq!(pooled.slots, fresh.slots);
        assert_eq!(pooled.rows.data(), fresh.rows.data());
        assert_eq!(pooled.rows.dim(), 2);
    }

    #[test]
    fn fused_shard_copy_on_first_then_folds() {
        let mut sh = FusedSlotShard::new(2, 4);
        sh.accumulate(2, &[1.0, -0.0], 1, &Sum);
        // first touch copies bit-exactly, including -0.0
        assert_eq!(sh.rows.row(0)[1].to_bits(), (-0.0f32).to_bits());
        sh.accumulate(2, &[2.0, 1.0], 1, &Sum);
        sh.accumulate(0, &[5.0, 5.0], 3, &Sum);
        assert_eq!(sh.keys, vec![2, 0]); // first-touch order
        assert_eq!(sh.counts, vec![2, 3]);
        assert_eq!(sh.rows.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn fused_merge_orders_senders_and_sums_counts() {
        let mut s0 = FusedSlotShard::new(1, 3);
        s0.accumulate(1, &[1.0], 2, &Sum);
        let mut s1 = FusedSlotShard::new(1, 3);
        s1.accumulate(1, &[10.0], 1, &Sum);
        s1.accumulate(0, &[7.0], 1, &Sum);
        let merged = FusedRows::merge(1, 3, &[s0, s1], &Sum);
        assert_eq!(merged.row(1), &[11.0]);
        assert_eq!(merged.count(1), 3);
        assert_eq!(merged.row(0), &[7.0]);
        assert_eq!(merged.count(0), 1);
        assert_eq!(merged.count(2), 0);
        // out-of-range slots (vertices added later) are empty
        assert_eq!(merged.count(9), 0);
        assert_eq!(merged.row(9), &[] as &[f32]);
    }

    #[test]
    fn fused_shard_reset_is_indistinguishable_from_fresh() {
        let mut pooled = FusedSlotShard::new(3, 5);
        pooled.accumulate(4, &[1.0, 2.0, 3.0], 1, &Sum);
        pooled.accumulate(0, &[4.0, 5.0, 6.0], 2, &Sum);
        // Reuse with a different dim and a larger slot count.
        pooled.reset(2, 8);
        let mut fresh = FusedSlotShard::new(2, 8);
        for sh in [&mut pooled, &mut fresh] {
            sh.accumulate(7, &[1.5, -0.0], 1, &Sum);
            sh.accumulate(7, &[0.5, 1.0], 1, &Sum);
            sh.accumulate(4, &[9.0, 9.0], 3, &Sum);
        }
        assert_eq!(pooled.keys, fresh.keys);
        assert_eq!(pooled.counts, fresh.counts);
        assert_eq!(pooled.rows.data(), fresh.rows.data());
        // Shrinking the slot count keeps the larger index (slots beyond
        // n_slots are simply never addressed).
        pooled.reset(2, 1);
        pooled.accumulate(0, &[1.0, 1.0], 1, &Sum);
        assert_eq!(pooled.keys, vec![0]);
    }

    #[test]
    fn fused_key_shard_folds_sparse_keys() {
        let mut sh = FusedKeyShard::new(2);
        sh.accumulate(1 << 40, &[1.0, 2.0], 1, &Sum);
        sh.accumulate(7, &[5.0, 5.0], 1, &Sum);
        sh.accumulate(1 << 40, &[1.0, 1.0], 2, &Sum);
        assert_eq!(sh.keys, vec![1 << 40, 7]);
        assert_eq!(sh.counts, vec![3, 1]);
        assert_eq!(sh.rows.row(0), &[2.0, 3.0]);
    }
}
