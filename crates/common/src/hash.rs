//! Fast, deterministic hashing.
//!
//! The engines hash node ids millions of times per superstep (partition
//! routing, combiner tables, broadcast lookup tables). The standard SipHash
//! is needlessly slow for trusted integer keys, and — worse for us — `HashMap`
//! with `RandomState` is seeded per-process, which would make "identical
//! bytes at every run" impossible to assert. This module provides the
//! FxHash algorithm (as used in rustc) with a *fixed* zero seed.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash: multiply-xor hashing, identical to `rustc-hash`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic across processes.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with deterministic fast hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with deterministic fast hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Stand-alone hash of a `u64` key — used for partition routing so that the
/// "mod N" partitioner of the paper does not collide with adversarially
/// regular id spaces (e.g. ids that are all multiples of the worker count).
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    // Fibonacci–xorshift mix; cheap and well distributed for sequential ids.
    let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 32;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 32;
    x
}

/// Default node-id → worker routing shared by every engine: hashed so that
/// sequential synthetic ids spread evenly (see `hash_u64`), deterministic so
/// that every run places every vertex identically.
#[inline]
pub fn partition_of(id: u64, n_workers: usize) -> usize {
    debug_assert!(n_workers > 0);
    (hash_u64(id) % n_workers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn partition_of_is_stable_and_bounded() {
        for id in 0..1000u64 {
            let w = partition_of(id, 7);
            assert!(w < 7);
            assert_eq!(w, partition_of(id, 7));
        }
    }

    #[test]
    fn hashes_are_deterministic() {
        let b = FxBuildHasher::default();
        let h1 = b.hash_one(12345u64);
        let h2 = b.hash_one(12345u64);
        assert_eq!(h1, h2);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn hash_u64_spreads_sequential_keys() {
        // Sequential ids must not all land in the same partition mod small N.
        let n = 16u64;
        let mut buckets = vec![0usize; n as usize];
        for id in 0..16_000u64 {
            buckets[(hash_u64(id) % n) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn hash_u64_spreads_strided_keys() {
        // ids that are multiples of the bucket count are the classic failure
        // mode of `id % n`; the mixed hash must still balance them.
        let n = 16u64;
        let mut buckets = vec![0usize; n as usize];
        for i in 0..16_000u64 {
            buckets[(hash_u64(i * n) % n) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let b = FxBuildHasher::default();
        // Different lengths must produce different hashes with overwhelming
        // probability; identical input identical output.
        let h1 = b.hash_one([1u8, 2, 3]);
        let h2 = b.hash_one([1u8, 2, 3]);
        let h3 = b.hash_one([1u8, 2, 3, 0]);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }
}
