//! Deterministic pseudo-random number generators.
//!
//! Everything in this workspace that needs randomness — graph generators,
//! feature noise, neighbour sampling — takes one of these generators
//! explicitly. There is no global RNG and no entropy source: the same seed
//! always yields the same graph, the same training run, and the same sampled
//! neighbourhood. The consistency experiments (paper Fig. 7) vary *only* the
//! sampling seed between runs, so seed plumbing has to be airtight.
//!
//! `SplitMix64` is used to expand a single `u64` seed into independent
//! streams; `Xoshiro256**` is the workhorse generator (fast, 256-bit state,
//! good statistical quality for simulation purposes).

/// SplitMix64: a tiny, well-mixed generator used primarily to seed
/// [`Xoshiro256`] streams from a single user-provided seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the default deterministic generator for the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion, per the xoshiro authors' guidance.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row, but guard anyway for safety with adversarial seeds.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Xoshiro256 { s }
    }

    /// Derive an independent child stream. Used to hand each simulated
    /// worker / each training epoch its own generator without correlation.
    pub fn fork(&mut self, tag: u64) -> Xoshiro256 {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro256::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (unbiased; the rejection loop triggers with negligible probability).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` index into a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Standard-normal sample via Box–Muller (one value per call; the twin is
    /// discarded to keep the generator state trajectory simple to reason
    /// about in tests).
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Gaussian with the given mean and standard deviation, as `f32`.
    pub fn gaussian_f32(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gaussian() as f32
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir when `k < n`,
    /// identity permutation prefix otherwise). Output order is unspecified
    /// but deterministic.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        // Reservoir sampling keeps memory at O(k) even for huge `n`.
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below((i + 1) as u64) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Zipf-like sample in `[0, n)`: probability of rank `r` proportional to
    /// `(r+1)^(-alpha)`. Continuous inverse-CDF approximation of bounded
    /// Zipf, which is the standard tool for generating skewed degree
    /// sequences; exact discrete normalisation is irrelevant for that use.
    pub fn zipf(&mut self, n: u64, alpha: f64) -> u64 {
        debug_assert!(n > 0);
        if alpha <= 0.0 || n == 1 {
            return self.below(n);
        }
        let u = self.next_f64().max(1e-12);
        let x = if (alpha - 1.0).abs() < 1e-9 {
            // F(x) = ln(x)/ln(n)  =>  x = n^u
            (n as f64).powf(u)
        } else {
            // F(x) = (x^{1-a} - 1)/(n^{1-a} - 1)  =>
            // x = (1 + u (n^{1-a} - 1))^{1/(1-a)}; valid for a<1 and a>1.
            let one_minus = 1.0 - alpha;
            (1.0 + u * ((n as f64).powf(one_minus) - 1.0)).powf(1.0 / one_minus)
        };
        ((x as u64).max(1) - 1).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = Xoshiro256::seed_from_u64(7);
        let mut root2 = Xoshiro256::seed_from_u64(7);
        let mut c1 = root1.fork(11);
        let mut c2 = root2.fork(11);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = root1.fork(12);
        assert_ne!(other.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow generous 10% tolerance
            assert!((9_000..=11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(100);
        let mut v: Vec<u32> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        // And it actually moved things.
        assert_ne!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Xoshiro256::seed_from_u64(8);
        let s = r.sample_indices(1000, 50);
        assert_eq!(s.len(), 50);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
        assert!(s.iter().all(|&i| i < 1000));
        // k >= n degenerates to all indices
        assert_eq!(r.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = Xoshiro256::seed_from_u64(77);
        let n = 100_000;
        let mut low = 0usize;
        for _ in 0..n {
            if r.zipf(10_000, 1.2) < 100 {
                low += 1;
            }
        }
        // With alpha=1.2, the first 1% of ranks should absorb far more than
        // 1% of the mass.
        assert!(low as f64 / n as f64 > 0.2, "low-rank mass {low}");
    }

    #[test]
    fn zipf_zero_alpha_is_uniformish() {
        let mut r = Xoshiro256::seed_from_u64(78);
        let mut low = 0usize;
        for _ in 0..100_000 {
            if r.zipf(10_000, 0.0) < 100 {
                low += 1;
            }
        }
        let frac = low as f64 / 100_000.0;
        assert!((0.005..0.02).contains(&frac), "frac {frac}");
    }
}
