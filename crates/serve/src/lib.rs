//! # inferturbo_serve — the traffic-facing layer over inference sessions
//!
//! The paper positions InferTurbo as production infrastructure: full-graph
//! inference feeding online systems (risk scoring, recommendations) for
//! millions of users. The session API (`inferturbo_core::session`) made
//! repeated inference cheap — plan once, run many — but still speaks
//! "runs". This crate speaks **requests**: long-lived plans, micro-batched
//! execution, fleet-wide admission control, and an overload-resilience
//! pipeline (deadlines, per-tenant rate limits, circuit breakers, and a
//! degraded-mode response cache) staged in front of the batcher.
//!
//! # Request lifecycle
//!
//! `admission → limiter → batcher → breaker → engine → cache`
//!
//! A [`ScoreRequest`] entering [`GnnServer::submit`] walks these stages:
//!
//! 1. **Intake admission** — quarantined plans fast-fail
//!    ([`ServeConfig::quarantine_after`]); ids, snapshot shapes and
//!    targets are validated; on first use of a configuration the
//!    [`AdmissionController`] gates the new plan's predicted peak
//!    residency against the fleet budget (paper §IV-A, applied
//!    fleet-wide), rejecting or shedding older plans per
//!    [`AdmissionPolicy`].
//! 2. **Limiter** — a request carrying a [`ScoreRequest::with_tenant`] id
//!    pays one token from that tenant's tick-refilled bucket
//!    ([`ServeConfig::rate_limit`], [`crate::limiter`]). An empty bucket
//!    either rejects the submit ([`OverflowPolicy::Reject`]) or routes
//!    the request to the *degraded path* ([`OverflowPolicy::Degrade`]):
//!    answered [`ScoreStatus::ServedStale`] from the response cache on a
//!    full hit, resolved [`ScoreStatus::Throttled`] otherwise — either
//!    way the ticket resolves, and no engine work happens.
//! 3. **Batcher** — admitted requests join their plan's queue, coalesced
//!    by feature-snapshot identity; a group flushes when it reaches
//!    [`ServeConfig::max_batch`] or ages past [`ServeConfig::max_wait`]
//!    full ticks. A request with a [`ScoreRequest::with_deadline`] that
//!    expires in the queue resolves [`ScoreStatus::DeadlineExceeded`]
//!    first — the expiry pass runs before aging, so dead work never
//!    occupies a batch slot.
//! 4. **Breaker** — each plan has a failure-rate circuit breaker
//!    ([`ServeConfig::breaker`], [`crate::breaker`]), the *soft*
//!    containment tier over the quarantine's hard consecutive-loss tier.
//!    Open breakers fast-fail fresh submits (or serve them stale); after
//!    a cooldown the next flushed batch is the probe that decides
//!    re-close vs re-open.
//! 5. **Engine** — one `run`/`run_with_features` call serves the whole
//!    coalesced group; transient failures are retried
//!    ([`ServeConfig::max_run_retries`]), terminal failures resolve the
//!    group [`ScoreStatus::Failed`] with the typed error.
//! 6. **Cache** — a successful run writes every node's logits row into
//!    the degraded-mode [`ResponseCache`] (keyed by plan × snapshot
//!    identity × node, [`ServeConfig::response_cache`] capacity), which
//!    is what stages 1–4's refusals fall back on.
//!
//! Every accepted submit reaches **exactly one** terminal [`ScoreStatus`]
//! — the pipeline resolves, it never drops.
//!
//! # Determinism contract
//!
//! The serving core is synchronous and wall-clock free — time is the
//! logical tick counter advanced by [`GnnServer::tick`], token buckets
//! refill from tick deltas, breakers trip and cool on tick windows, and
//! the response cache evicts in deterministic insertion order — so tests
//! replay traffic traces byte-for-byte, overload included. On top of the
//! session contract it guarantees:
//!
//! - **batching is invisible**: the logits a request receives are
//!   bit-identical to calling
//!   [`run_with_features`](inferturbo_core::InferencePlan::run_with_features)
//!   sequentially, once per coalesced group, at every thread count
//!   (`INFERTURBO_THREADS` / `Parallelism`) — a batch *is* one such call,
//!   and the per-request responses are row slices of its output;
//! - **stale answers are bit-identical to the fresh run that populated
//!   them**: a [`ScoreStatus::ServedStale`] row is a copy of the
//!   populating run's output row, never a recomputation;
//! - **FIFO responses per plan**: responses for one plan become ready in
//!   ticket (submission) order, even when a later-submitted group executes
//!   first ([`inferturbo_common::ReorderBuffer`] gates release). The one
//!   documented exception is the degraded path: throttled/stale
//!   resolutions never enter a plan's FIFO (they hold no per-plan seq) and
//!   resolve immediately;
//! - **admission is inclusive at the budget boundary**, matching
//!   `Backend::Auto`'s `pregel_fits` semantics: a fleet whose summed
//!   residency equals the budget still fits.
//!
//! `tests/serving.rs` at the workspace root enforces all of these.
//!
//! # Overload drill
//!
//! The `INFERTURBO_OVERLOAD` env knob (`"bucket:B,refill:R[,deadline:D]"`)
//! arms an aggressive Degrade-policy rate limit and deadline clamp into
//! every default-constructed [`ServeConfig`] — CI's overload leg runs the
//! serving tests under it. It is inert for existing traffic by design:
//! untenanted requests bypass the limiter, and the clamp tightens
//! deadlines but never imposes one.

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod limiter;
pub mod server;
pub mod stats;

pub use admission::{Admission, AdmissionController, AdmissionPolicy};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{PlanCache, PlanKey, ResponseCache};
pub use limiter::{OverflowPolicy, RateLimitConfig, TenantRateLimiter};
pub use server::{
    FeatureSnapshot, GnnServer, ScoreRequest, ScoreResponse, ScoreStatus, ServeConfig,
};
pub use stats::ServerStats;
