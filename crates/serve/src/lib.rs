//! # inferturbo_serve — the traffic-facing layer over inference sessions
//!
//! The paper positions InferTurbo as production infrastructure: full-graph
//! inference feeding online systems (risk scoring, recommendations) for
//! millions of users. The session API (`inferturbo_core::session`) made
//! repeated inference cheap — plan once, run many — but still speaks
//! "runs". This crate speaks **requests**: long-lived plans, micro-batched
//! execution, and fleet-wide admission control.
//!
//! # Architecture
//!
//! ```text
//! ScoreRequest ──▶ GnnServer::submit ──▶ AdmissionController (fleet budget)
//!                        │                      │ admit / shed / reject
//!                        ▼                      ▼
//!                  RequestQueue            PlanCache (plan once per PlanKey)
//!                  per-plan groups,             │
//!                  coalesced by snapshot        ▼
//!                        │  max_batch /   InferencePlan (pooled scratch,
//!                        ▼  max_wait      zero-copy record reload)
//!                  micro-batcher ──run_with_features──▶ per-request logits
//!                        │
//!                        ▼
//!                  ReorderBuffer (FIFO per plan) ──▶ ready responses
//! ```
//!
//! - [`PlanCache`] plans each (model, graph, strategy, workers, backend)
//!   configuration once and shares the pooled-scratch
//!   [`InferencePlan`](inferturbo_core::InferencePlan) across every
//!   request that names it.
//! - [`GnnServer`] owns a per-plan request queue whose **micro-batcher**
//!   coalesces requests sharing one feature snapshot into a single
//!   `run_with_features` execution; a group flushes when it reaches
//!   [`ServeConfig::max_batch`] requests or its oldest request has waited
//!   [`ServeConfig::max_wait`] logical ticks.
//! - [`AdmissionController`] gates new plans on the *sum* of admitted
//!   plans' predicted peak per-worker residency
//!   ([`inferturbo_cluster::FleetEstimate`]) against a global memory
//!   budget — the paper's §IV-A memory trade-off applied fleet-wide — with
//!   [`AdmissionPolicy::Reject`] and [`AdmissionPolicy::ShedOldest`]
//!   policies.
//! - [`ServerStats`] reports requests, batches, the coalescing ratio,
//!   per-plane message bytes and the queue-depth high-water mark, in the
//!   same spirit as [`inferturbo_cluster::RunReport`].
//!
//! # Determinism contract
//!
//! The serving core is synchronous and wall-clock free — time is the
//! logical tick counter advanced by [`GnnServer::tick`], so tests replay
//! traffic traces byte-for-byte. On top of the session contract it
//! guarantees:
//!
//! - **batching is invisible**: the logits a request receives are
//!   bit-identical to calling
//!   [`run_with_features`](inferturbo_core::InferencePlan::run_with_features)
//!   sequentially, once per coalesced group, at every thread count
//!   (`INFERTURBO_THREADS` / `Parallelism`) — a batch *is* one such call,
//!   and the per-request responses are row slices of its output;
//! - **FIFO responses per plan**: responses for one plan become ready in
//!   ticket (submission) order, even when a later-submitted group executes
//!   first ([`inferturbo_common::ReorderBuffer`] gates release);
//! - **admission is inclusive at the budget boundary**, matching
//!   `Backend::Auto`'s `pregel_fits` semantics: a fleet whose summed
//!   residency equals the budget still fits.
//!
//! `tests/serving.rs` at the workspace root enforces all three.

pub mod admission;
pub mod cache;
pub mod server;
pub mod stats;

pub use admission::{Admission, AdmissionController, AdmissionPolicy};
pub use cache::{PlanCache, PlanKey};
pub use server::{
    FeatureSnapshot, GnnServer, ScoreRequest, ScoreResponse, ScoreStatus, ServeConfig,
};
pub use stats::ServerStats;
