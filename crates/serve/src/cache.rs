//! The server's two caches: the **plan cache** (one [`InferencePlan`] per
//! serving configuration, planned on first use and shared by every
//! subsequent request) and the **response cache** ([`ResponseCache`]: the
//! last known logits per node, backing degraded-mode
//! [`ServedStale`](crate::ScoreStatus::ServedStale) answers under
//! overload).
//!
//! Planning is the expensive, pure half of the session pipeline (record
//! builds, shadow mirroring, hub sets, cost estimation); the JIT-style
//! amortisation argument for long-lived GNN services is exactly that this
//! work happens **once per configuration**, not once per request. The
//! cache key is the full planning input — model and graph identity,
//! [`StrategyKey`], worker count, backend request — so two keys that
//! compare equal are guaranteed to plan identically (planning is pure; see
//! `inferturbo_core::session`).
//!
//! The cache itself is deliberately a plain keyed store: the
//! [`GnnServer`](crate::GnnServer) plans *before* inserting (admission
//! must see the plan's residency first) and keeps its own hit/miss
//! counters in [`ServerStats`](crate::ServerStats).

use crate::server::FeatureSnapshot;
use inferturbo_common::FxHashMap;
use inferturbo_core::session::Backend;
use inferturbo_core::{InferencePlan, StrategyKey};
use std::collections::VecDeque;
use std::sync::Arc;

/// Identity of one planned serving configuration. `model` and `graph` are
/// caller-assigned registry ids (see
/// [`GnnServer::register_model`](crate::GnnServer::register_model)); the
/// rest is the planning input itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub model: u64,
    pub graph: u64,
    pub strategy: StrategyKey,
    pub workers: usize,
    /// The *requested* backend (possibly `Auto`); the resolved backend is
    /// a plan property, not a key property.
    pub backend: Backend,
    /// Out-of-core spill budget the request planned under (`None` = no
    /// spilling). Part of the key because it shapes the plan's estimate,
    /// residency, and `Auto` backend resolution.
    pub spill_budget: Option<u64>,
}

/// Long-lived plans keyed by [`PlanKey`].
pub struct PlanCache<'a> {
    plans: FxHashMap<PlanKey, InferencePlan<'a>>,
}

impl<'a> Default for PlanCache<'a> {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl<'a> PlanCache<'a> {
    pub fn new() -> Self {
        PlanCache {
            plans: FxHashMap::default(),
        }
    }

    /// Cache a freshly planned configuration. Keys are planned at most
    /// once; inserting a key twice is a caller logic error.
    pub fn insert(&mut self, key: PlanKey, plan: InferencePlan<'a>) {
        let prev = self.plans.insert(key, plan);
        assert!(prev.is_none(), "plan for {key:?} already cached");
    }

    pub fn get(&self, key: &PlanKey) -> Option<&InferencePlan<'a>> {
        self.plans.get(key)
    }

    pub fn contains(&self, key: &PlanKey) -> bool {
        self.plans.contains_key(key)
    }

    /// Drop a cached plan (admission eviction). Returns whether it
    /// existed.
    pub fn remove(&mut self, key: &PlanKey) -> bool {
        self.plans.remove(key).is_some()
    }

    /// Cached plans alive right now.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Identity of the feature matrix a cached response was computed against.
///
/// Coalescing (and therefore response identity) is by `Arc` pointer, not
/// value equality, so the cache key uses the snapshot's allocation address
/// — with `0` as the sentinel for "the graph's own features" (`None`;
/// graph identity is already part of the [`PlanKey`]). The cache **pins**
/// the `Arc` of every snapshot it holds rows for, so an address can never
/// be recycled for a different snapshot while rows keyed by it are alive
/// (the ABA hazard of raw-pointer keys).
fn snapshot_ident(features: &Option<FeatureSnapshot>) -> usize {
    match features {
        None => 0,
        Some(snap) => Arc::as_ptr(snap) as usize,
    }
}

type ResponseKey = (PlanKey, usize, u32);

/// The degraded-mode response cache: the last known logits row per
/// `(plan, feature snapshot, node)`.
///
/// Fresh successful runs populate it; requests refused by the rate
/// limiter, a tripped circuit breaker, or an admission eviction are
/// answered [`ServedStale`](crate::ScoreStatus::ServedStale) from it when
/// every requested node hits — stale-but-instant beats failed, which is
/// exactly the serving trade "Efficient GNN Inference at Large Scale"
/// argues for repeated scores of unchanged nodes. Rows survive plan
/// eviction on purpose: serving stale while the plan is gone is the whole
/// point of a degraded mode.
///
/// Bounded by a row capacity with FIFO eviction — insertion order is
/// deterministic (run completion order × node order), so the cache's
/// contents replay bit-identically with the rest of the server.
pub struct ResponseCache {
    rows: FxHashMap<ResponseKey, Vec<f32>>,
    /// Insertion order of live keys (FIFO eviction).
    order: VecDeque<ResponseKey>,
    capacity: usize,
    /// Snapshot pins: `ident -> (the Arc, live-row refcount)`. Dropped at
    /// zero — safe, because with no rows left under an ident a recycled
    /// address can only ever be observed by *new* rows of the new
    /// snapshot.
    pins: FxHashMap<usize, (FeatureSnapshot, usize)>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` logits rows (`0` disables it).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            rows: FxHashMap::default(),
            order: VecDeque::new(),
            capacity,
            pins: FxHashMap::default(),
        }
    }

    /// Record node `node`'s logits row from a fresh run of `plan` against
    /// `features`. Overwrites in place (runs are deterministic, so the row
    /// is bit-identical anyway) without disturbing eviction order.
    pub fn insert(
        &mut self,
        plan: PlanKey,
        features: &Option<FeatureSnapshot>,
        node: u32,
        row: Vec<f32>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = (plan, snapshot_ident(features), node);
        if let Some(existing) = self.rows.get_mut(&key) {
            *existing = row;
            return;
        }
        while self.rows.len() >= self.capacity {
            // rows and order move in lockstep; if they ever diverge, stop
            // evicting rather than loop on an empty queue.
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.rows.remove(&oldest);
            self.unpin(oldest.1);
        }
        if let Some(snap) = features {
            self.pins
                .entry(key.1)
                .or_insert_with(|| (Arc::clone(snap), 0))
                .1 += 1;
        }
        self.rows.insert(key, row);
        self.order.push_back(key);
    }

    /// The cached logits row for `(plan, features, node)`, if present.
    pub fn get(
        &self,
        plan: &PlanKey,
        features: &Option<FeatureSnapshot>,
        node: u32,
    ) -> Option<&[f32]> {
        self.rows
            .get(&(*plan, snapshot_ident(features), node))
            .map(Vec::as_slice)
    }

    /// Live cached rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn unpin(&mut self, ident: usize) {
        if ident == 0 {
            return;
        }
        if let Some(entry) = self.pins.get_mut(&ident) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.pins.remove(&ident);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferturbo_core::models::{GnnModel, PoolOp};
    use inferturbo_core::session::InferenceSession;
    use inferturbo_core::StrategyConfig;
    use inferturbo_graph::gen::{generate, DegreeSkew, GenConfig};
    use inferturbo_graph::Graph;

    fn fixture() -> (Graph, GnnModel) {
        let g = generate(&GenConfig {
            n_nodes: 60,
            n_edges: 300,
            feat_dim: 4,
            classes: 2,
            skew: DegreeSkew::In,
            seed: 3,
            ..GenConfig::default()
        });
        let m = GnnModel::sage(4, 8, 2, 2, false, PoolOp::Mean, 1);
        (g, m)
    }

    fn plan<'a>(m: &'a GnnModel, g: &'a Graph) -> InferencePlan<'a> {
        InferenceSession::builder()
            .model(m)
            .graph(g)
            .workers(4)
            .backend(Backend::Pregel)
            .plan()
            .unwrap()
    }

    #[test]
    fn stores_and_evicts_by_key() {
        let (g, m) = fixture();
        let key = PlanKey {
            model: 1,
            graph: 1,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Pregel,
            spill_budget: None,
        };
        let mut cache = PlanCache::new();
        assert!(!cache.contains(&key));
        cache.insert(key, plan(&m, &g));
        assert!(cache.contains(&key));
        assert_eq!(cache.len(), 1);
        // The cached plan is the shared instance requests run on.
        assert_eq!(cache.get(&key).unwrap().workers(), 4);
        assert!(cache.remove(&key));
        assert!(cache.is_empty());
        assert!(!cache.remove(&key), "double-remove reports absence");
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_is_a_logic_error() {
        let (g, m) = fixture();
        let key = PlanKey {
            model: 1,
            graph: 1,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Pregel,
            spill_budget: None,
        };
        let mut cache = PlanCache::new();
        cache.insert(key, plan(&m, &g));
        cache.insert(key, plan(&m, &g));
    }

    fn rkey(model: u64) -> PlanKey {
        PlanKey {
            model,
            graph: 1,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Pregel,
            spill_budget: None,
        }
    }

    #[test]
    fn response_cache_keys_by_plan_snapshot_and_node() {
        let mut c = ResponseCache::new(16);
        let snap: FeatureSnapshot = Arc::new(vec![vec![0.0; 4]; 8]);
        c.insert(rkey(1), &None, 3, vec![1.0, 2.0]);
        c.insert(rkey(1), &Some(Arc::clone(&snap)), 3, vec![9.0, 9.0]);
        // Same plan + node, different snapshot identity: distinct rows.
        assert_eq!(c.get(&rkey(1), &None, 3), Some(&[1.0, 2.0][..]));
        assert_eq!(c.get(&rkey(1), &Some(snap), 3), Some(&[9.0, 9.0][..]));
        // Other plan / other node: misses.
        assert_eq!(c.get(&rkey(2), &None, 3), None);
        assert_eq!(c.get(&rkey(1), &None, 4), None);
        // A fresh re-run overwrites in place (no growth).
        c.insert(rkey(1), &None, 3, vec![5.0, 5.0]);
        assert_eq!(c.get(&rkey(1), &None, 3), Some(&[5.0, 5.0][..]));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn response_cache_evicts_fifo_at_capacity() {
        let mut c = ResponseCache::new(2);
        c.insert(rkey(1), &None, 0, vec![0.0]);
        c.insert(rkey(1), &None, 1, vec![1.0]);
        c.insert(rkey(1), &None, 2, vec![2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&rkey(1), &None, 0), None, "oldest row evicted");
        assert!(c.get(&rkey(1), &None, 1).is_some());
        assert!(c.get(&rkey(1), &None, 2).is_some());
    }

    #[test]
    fn response_cache_capacity_zero_disables_caching() {
        let mut c = ResponseCache::new(0);
        c.insert(rkey(1), &None, 0, vec![0.0]);
        assert!(c.is_empty());
        assert_eq!(c.get(&rkey(1), &None, 0), None);
    }

    #[test]
    fn response_cache_pins_snapshots_against_address_reuse() {
        let mut c = ResponseCache::new(4);
        let snap: FeatureSnapshot = Arc::new(vec![vec![0.0; 4]; 8]);
        let weak = Arc::downgrade(&snap);
        c.insert(rkey(1), &Some(Arc::clone(&snap)), 0, vec![7.0]);
        drop(snap);
        // The cache's pin keeps the snapshot allocation alive, so its
        // address cannot be recycled into a colliding key.
        assert!(weak.upgrade().is_some(), "cache pins the snapshot Arc");
        // Evicting the last row under the snapshot releases the pin.
        for node in 1..=4 {
            c.insert(rkey(1), &None, node, vec![0.0]);
        }
        assert!(weak.upgrade().is_none(), "last row out = pin released");
    }
}
