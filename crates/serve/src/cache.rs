//! The plan cache: one [`InferencePlan`] per serving configuration,
//! planned on first use and shared by every subsequent request.
//!
//! Planning is the expensive, pure half of the session pipeline (record
//! builds, shadow mirroring, hub sets, cost estimation); the JIT-style
//! amortisation argument for long-lived GNN services is exactly that this
//! work happens **once per configuration**, not once per request. The
//! cache key is the full planning input — model and graph identity,
//! [`StrategyKey`], worker count, backend request — so two keys that
//! compare equal are guaranteed to plan identically (planning is pure; see
//! `inferturbo_core::session`).
//!
//! The cache itself is deliberately a plain keyed store: the
//! [`GnnServer`](crate::GnnServer) plans *before* inserting (admission
//! must see the plan's residency first) and keeps its own hit/miss
//! counters in [`ServerStats`](crate::ServerStats).

use inferturbo_common::FxHashMap;
use inferturbo_core::session::Backend;
use inferturbo_core::{InferencePlan, StrategyKey};

/// Identity of one planned serving configuration. `model` and `graph` are
/// caller-assigned registry ids (see
/// [`GnnServer::register_model`](crate::GnnServer::register_model)); the
/// rest is the planning input itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub model: u64,
    pub graph: u64,
    pub strategy: StrategyKey,
    pub workers: usize,
    /// The *requested* backend (possibly `Auto`); the resolved backend is
    /// a plan property, not a key property.
    pub backend: Backend,
    /// Out-of-core spill budget the request planned under (`None` = no
    /// spilling). Part of the key because it shapes the plan's estimate,
    /// residency, and `Auto` backend resolution.
    pub spill_budget: Option<u64>,
}

/// Long-lived plans keyed by [`PlanKey`].
pub struct PlanCache<'a> {
    plans: FxHashMap<PlanKey, InferencePlan<'a>>,
}

impl<'a> Default for PlanCache<'a> {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl<'a> PlanCache<'a> {
    pub fn new() -> Self {
        PlanCache {
            plans: FxHashMap::default(),
        }
    }

    /// Cache a freshly planned configuration. Keys are planned at most
    /// once; inserting a key twice is a caller logic error.
    pub fn insert(&mut self, key: PlanKey, plan: InferencePlan<'a>) {
        let prev = self.plans.insert(key, plan);
        assert!(prev.is_none(), "plan for {key:?} already cached");
    }

    pub fn get(&self, key: &PlanKey) -> Option<&InferencePlan<'a>> {
        self.plans.get(key)
    }

    pub fn contains(&self, key: &PlanKey) -> bool {
        self.plans.contains_key(key)
    }

    /// Drop a cached plan (admission eviction). Returns whether it
    /// existed.
    pub fn remove(&mut self, key: &PlanKey) -> bool {
        self.plans.remove(key).is_some()
    }

    /// Cached plans alive right now.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferturbo_core::models::{GnnModel, PoolOp};
    use inferturbo_core::session::InferenceSession;
    use inferturbo_core::StrategyConfig;
    use inferturbo_graph::gen::{generate, DegreeSkew, GenConfig};
    use inferturbo_graph::Graph;

    fn fixture() -> (Graph, GnnModel) {
        let g = generate(&GenConfig {
            n_nodes: 60,
            n_edges: 300,
            feat_dim: 4,
            classes: 2,
            skew: DegreeSkew::In,
            seed: 3,
            ..GenConfig::default()
        });
        let m = GnnModel::sage(4, 8, 2, 2, false, PoolOp::Mean, 1);
        (g, m)
    }

    fn plan<'a>(m: &'a GnnModel, g: &'a Graph) -> InferencePlan<'a> {
        InferenceSession::builder()
            .model(m)
            .graph(g)
            .workers(4)
            .backend(Backend::Pregel)
            .plan()
            .unwrap()
    }

    #[test]
    fn stores_and_evicts_by_key() {
        let (g, m) = fixture();
        let key = PlanKey {
            model: 1,
            graph: 1,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Pregel,
            spill_budget: None,
        };
        let mut cache = PlanCache::new();
        assert!(!cache.contains(&key));
        cache.insert(key, plan(&m, &g));
        assert!(cache.contains(&key));
        assert_eq!(cache.len(), 1);
        // The cached plan is the shared instance requests run on.
        assert_eq!(cache.get(&key).unwrap().workers(), 4);
        assert!(cache.remove(&key));
        assert!(cache.is_empty());
        assert!(!cache.remove(&key), "double-remove reports absence");
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_is_a_logic_error() {
        let (g, m) = fixture();
        let key = PlanKey {
            model: 1,
            graph: 1,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Pregel,
            spill_budget: None,
        };
        let mut cache = PlanCache::new();
        cache.insert(key, plan(&m, &g));
        cache.insert(key, plan(&m, &g));
    }
}
