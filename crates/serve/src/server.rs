//! The serving loop: request intake, micro-batching, execution, FIFO
//! response release. See the crate docs for the architecture and the
//! determinism contract.

use crate::admission::{Admission, AdmissionController, AdmissionPolicy};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::cache::{PlanCache, PlanKey, ResponseCache};
use crate::limiter::{OverflowPolicy, RateLimitConfig, TenantRateLimiter};
use crate::stats::ServerStats;
use inferturbo_cluster::ClusterSpec;
use inferturbo_common::{Error, FxHashMap, FxHashSet, ReorderBuffer, Result, Ticket, TicketLine};
use inferturbo_core::models::GnnModel;
use inferturbo_core::session::{Backend, InferenceSession};
use inferturbo_core::{InferencePlan, StrategyConfig};
use inferturbo_graph::Graph;
use inferturbo_obs::{
    AdmissionOutcome, BreakerAction, LimiterOutcome, Payload, Site, TerminalStatus, TraceHandle,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, immutable feature matrix (row `v` = node `v`'s features).
/// Requests naming the **same** snapshot (`Arc` identity, not value
/// equality) coalesce into one run — the intended pattern is one `Arc` per
/// feature refresh, shared by every request scoring against it.
pub type FeatureSnapshot = Arc<Vec<Vec<f32>>>;

/// Server configuration. All quantities are logical — no wall clock.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a coalesced group as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a group once its oldest request has waited at least this many
    /// **full** ticks (0 = flush at the next [`GnnServer::tick`]).
    ///
    /// A submit always lands mid-interval — after some `tick()` and before
    /// the next — and that partial interval does not count as waiting: a
    /// group opened at clock `N` flushes at the tick that moves the clock
    /// to `N + max_wait + 1`, having existed through `max_wait` whole
    /// ticks. (Counting the partial interval would make a group that
    /// arrived just before a tick age a full tick early, and would make
    /// `max_wait` 0 and 1 indistinguishable.)
    pub max_wait: u64,
    /// Global fleet memory budget the summed per-plan peak residency is
    /// gated on (paper §IV-A, fleet-wide; inclusive at the boundary).
    pub memory_budget: u64,
    /// What to do with a plan that does not fit the remaining budget.
    pub policy: AdmissionPolicy,
    /// Directory spill files are written to for requests that plan with a
    /// [`ScoreRequest::with_spill_budget`] (default: the OS temp dir).
    pub spill_dir: Option<std::path::PathBuf>,
    /// How many times a *transiently*-failed batch run
    /// ([`inferturbo_common::Error::is_transient`]) is re-executed before
    /// the whole group completes with [`ScoreStatus::Failed`]. Permanent
    /// errors (OOM, configuration) are never retried. Retry is safe
    /// because runs are deterministic and a plan's fault schedule drains
    /// its budgets across runs — the re-run does not replay the failure.
    pub max_run_retries: u32,
    /// Quarantine a plan after this many *consecutive* failed batch runs
    /// (counting a run as failed only after its retries are spent).
    /// Subsequent submits against a quarantined plan fast-fail with a
    /// typed error instead of queueing doomed work; one successful run —
    /// e.g. of a group that was already queued — lifts the quarantine.
    /// `0` disables quarantining.
    pub quarantine_after: u32,
    /// Deterministic fault schedule armed into every plan the server
    /// builds (the failure-drill knob; see `inferturbo_cluster::fault`).
    /// Budgets are per plan and shared across that plan's runs, so a
    /// drained fault does not re-fire on a retry. `None` defers to the
    /// engines' `INFERTURBO_FAULTS` fallback.
    pub fault_plan: Option<inferturbo_cluster::FaultPlan>,
    /// Checkpoint/recovery policy armed into every plan the server builds
    /// (see `inferturbo_cluster::RecoveryPolicy`). With a `fault_plan` set
    /// and this `None`, runs fail fast and resilience lives entirely in
    /// the serve layer's retry/quarantine machinery.
    pub recovery: Option<inferturbo_cluster::RecoveryPolicy>,
    /// Per-tenant token-bucket rate limit (see [`crate::limiter`]). `None`
    /// disables the limiter; requests without a
    /// [`ScoreRequest::with_tenant`] id always bypass it.
    pub rate_limit: Option<RateLimitConfig>,
    /// Per-plan circuit breaker thresholds (see [`crate::breaker`]): the
    /// *soft*, failure-rate tier of containment over the quarantine's
    /// hard consecutive-loss tier. `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// Row capacity of the degraded-mode [`ResponseCache`] (`0` disables
    /// it): fresh runs record per-node logits, and throttled /
    /// breaker-open / shed requests are answered
    /// [`ScoreStatus::ServedStale`] from it when every requested node
    /// hits.
    pub response_cache: usize,
    /// Clamp applied to request deadlines: a request carrying a
    /// [`ScoreRequest::with_deadline`] larger than this is tightened to
    /// it. Never *imposes* a deadline on a request that has none — that
    /// keeps the `INFERTURBO_OVERLOAD` drill (which forces a tiny clamp)
    /// inert for deadline-free traffic.
    pub deadline_clamp: Option<u64>,
    /// Flight-recorder handle for the request lifecycle (see
    /// [`inferturbo_obs`]): every submit's path through admission, the
    /// limiter, the batcher, the breaker, the engine and its terminal
    /// `ScoreStatus` is emitted at `epoch = `the server's logical tick.
    /// Default: armed from the `INFERTURBO_TRACE` environment variable
    /// (disabled, zero-cost, unless set).
    pub trace: TraceHandle,
    /// Shuffle transport armed into every plan the server builds (see
    /// `inferturbo_cluster::transport`): in-process shard moves or spawned
    /// worker processes over pipes. Backends are bit-identical, so this
    /// choice never enters [`PlanKey`] — two servers on
    /// different transports serve byte-identical responses from
    /// interchangeable caches. `None` defers to the engines'
    /// `INFERTURBO_TRANSPORT` environment arming.
    pub transport: Option<std::sync::Arc<dyn inferturbo_cluster::Transport>>,
}

/// Parse the `INFERTURBO_OVERLOAD` drill knob:
/// `"bucket:B,refill:R[,deadline:D]"` forces a Degrade-policy rate limit
/// of `B` tokens refilling `R`/tick onto every tenant-carrying request,
/// and (optionally) clamps request deadlines to `D` ticks. Malformed
/// input panics loudly — a drill that silently parses to nothing would
/// "pass" without testing anything (same contract as
/// `FaultPlan::from_env`).
fn overload_from_env() -> Option<(RateLimitConfig, Option<u64>)> {
    // itlint::allow(env-read): documented fleet-drill arming knob, same contract as INFERTURBO_FAULTS
    let spec = std::env::var("INFERTURBO_OVERLOAD").ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    let mut bucket = None;
    let mut refill = None;
    let mut deadline = None;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once(':')
            // itlint::allow(panic-in-lib): a misarmed overload drill must abort at process start, not silently parse to nothing
            .unwrap_or_else(|| panic!("INFERTURBO_OVERLOAD: `{part}` is not `key:value`"));
        let value: u64 = value
            .trim()
            .parse()
            // itlint::allow(panic-in-lib): a misarmed overload drill must abort at process start, not silently parse to nothing
            .unwrap_or_else(|_| panic!("INFERTURBO_OVERLOAD: `{value}` is not a u64"));
        match key.trim() {
            "bucket" => bucket = Some(value),
            "refill" => refill = Some(value),
            "deadline" => deadline = Some(value),
            // itlint::allow(panic-in-lib): a misarmed overload drill must abort at process start, not silently parse to nothing
            other => panic!(
                "INFERTURBO_OVERLOAD: unknown key `{other}` \
                 (expected bucket/refill/deadline)"
            ),
        }
    }
    let (Some(bucket), Some(refill)) = (bucket, refill) else {
        // itlint::allow(panic-in-lib): a misarmed overload drill must abort at process start, not silently parse to nothing
        panic!("INFERTURBO_OVERLOAD: both `bucket` and `refill` are required");
    };
    Some((RateLimitConfig::degrade(bucket, refill), deadline))
}

impl Default for ServeConfig {
    fn default() -> Self {
        let mut cfg = ServeConfig {
            max_batch: 16,
            max_wait: 4,
            // One production Pregel worker's memory: the same default cap
            // a standalone session plans against.
            memory_budget: ClusterSpec::pregel_cluster(1).memory_bytes,
            policy: AdmissionPolicy::Reject,
            spill_dir: None,
            max_run_retries: 2,
            quarantine_after: 3,
            fault_plan: None,
            recovery: None,
            rate_limit: None,
            breaker: Some(BreakerConfig::default()),
            response_cache: 4096,
            deadline_clamp: None,
            trace: inferturbo_obs::arm::from_env(),
            transport: None,
        };
        // The CI overload drill: arm an aggressive limiter + deadline
        // clamp into every default-constructed server. Inert for the
        // existing suite by design — untenanted requests bypass the
        // limiter, and the clamp never imposes a deadline.
        if let Some((rate_limit, deadline_clamp)) = overload_from_env() {
            cfg.rate_limit = Some(rate_limit);
            cfg.deadline_clamp = deadline_clamp;
        }
        cfg
    }
}

/// One inference request: which plan to score on, against which feature
/// snapshot (`None` = the graph's own features), and which nodes to return
/// logits for (empty = all nodes).
#[derive(Debug, Clone)]
pub struct ScoreRequest {
    /// Registered model id (see [`GnnServer::register_model`]).
    pub model: u64,
    /// Registered graph id (see [`GnnServer::register_graph`]).
    pub graph: u64,
    pub strategy: StrategyConfig,
    pub workers: usize,
    pub backend: Backend,
    /// Out-of-core spill budget the plan runs under (see
    /// `SessionBuilder::spill_budget`): shrinks the plan's resident
    /// estimate — what admission gates on — by paging columnar inbox rows
    /// to disk. `None` = no spilling.
    pub spill_budget: Option<u64>,
    pub features: Option<FeatureSnapshot>,
    /// Node ids whose logits the response carries; empty = every node.
    pub targets: Vec<u32>,
    /// Traffic source this request bills against for rate limiting
    /// ([`ServeConfig::rate_limit`]). `None` (internal traffic, tests)
    /// bypasses the limiter.
    pub tenant: Option<u64>,
    /// Logical-tick answer budget: the request tolerates waiting this many
    /// **full** ticks in the queue (same partial-tick rule as
    /// [`ServeConfig::max_wait`]). Expired requests resolve
    /// [`ScoreStatus::DeadlineExceeded`] instead of occupying a batch
    /// slot. `None` = wait forever.
    pub deadline: Option<u64>,
}

impl ScoreRequest {
    /// A request against `model` × `graph` with the production defaults
    /// (all strategies, 8 workers, `Backend::Auto`, graph features, all
    /// nodes).
    pub fn new(model: u64, graph: u64) -> Self {
        ScoreRequest {
            model,
            graph,
            strategy: StrategyConfig::all(),
            workers: 8,
            backend: Backend::Auto,
            spill_budget: None,
            features: None,
            targets: Vec::new(),
            tenant: None,
            deadline: None,
        }
    }

    /// Bill this request against `tenant`'s rate-limit bucket.
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Give the request a queue-wait deadline of `ticks` full ticks (see
    /// [`ScoreRequest::deadline`]).
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.deadline = Some(ticks);
        self
    }

    pub fn with_strategy(mut self, strategy: StrategyConfig) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Plan (and run) under an out-of-core spill budget, shrinking the
    /// residency admission charges this plan for.
    pub fn with_spill_budget(mut self, bytes: u64) -> Self {
        self.spill_budget = Some(bytes);
        self
    }

    pub fn with_snapshot(mut self, snapshot: FeatureSnapshot) -> Self {
        self.features = Some(snapshot);
        self
    }

    pub fn with_targets(mut self, targets: Vec<u32>) -> Self {
        self.targets = targets;
        self
    }

    /// The plan-cache key this request resolves to.
    pub fn plan_key(&self) -> PlanKey {
        PlanKey {
            model: self.model,
            graph: self.graph,
            strategy: self.strategy.key(),
            workers: self.workers,
            backend: self.backend,
            spill_budget: self.spill_budget,
        }
    }
}

/// Terminal state of a request. Every accepted submit reaches exactly one
/// of these — the overload pipeline resolves, it never drops.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreStatus {
    /// Logits for the requested targets (request order), or for every node
    /// when the request named none. Behind an `Arc`: full-logits requests
    /// in one coalesced group all share the run's output allocation.
    Served(Arc<Vec<Vec<f32>>>),
    /// Degraded-mode answer: the same shape as [`ScoreStatus::Served`],
    /// but the rows come from the [`ResponseCache`] — bit-identical to
    /// the fresh run that populated them, possibly computed against an
    /// older cluster state. Produced when the rate limiter (under
    /// [`OverflowPolicy::Degrade`]), an open circuit breaker, or an
    /// admission eviction refused fresh work and every requested node had
    /// a cached row.
    ServedStale(Arc<Vec<Vec<f32>>>),
    /// The request's plan was evicted by [`AdmissionPolicy::ShedOldest`]
    /// before its batch ran (and the response cache had no complete
    /// answer for it).
    Shed,
    /// The request's [`deadline`](ScoreRequest::with_deadline) passed
    /// before its group flushed; the engine never ran for it. Carries the
    /// tick budget the request was willing to wait (post-clamp).
    DeadlineExceeded { deadline: u64 },
    /// The rate limiter refused the request under
    /// [`OverflowPolicy::Degrade`] and the response cache had no complete
    /// answer — the degraded path's "no" that still resolves the ticket.
    Throttled,
    /// The batch run failed (e.g. a simulated worker OOM); carries the
    /// typed run error.
    Failed(Error),
}

/// A completed request, tagged with its submission ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    pub ticket: Ticket,
    pub status: ScoreStatus,
}

impl ScoreResponse {
    /// The answered logits — fresh **or stale** — if the request got any.
    pub fn logits(&self) -> Option<&[Vec<f32>]> {
        match &self.status {
            ScoreStatus::Served(l) | ScoreStatus::ServedStale(l) => Some(l.as_slice()),
            _ => None,
        }
    }

    /// True when the answer came from the degraded path's response cache.
    pub fn is_stale(&self) -> bool {
        matches!(self.status, ScoreStatus::ServedStale(_))
    }

    /// The response as a typed result: logits (fresh or stale) on
    /// success, the matching [`Error`] otherwise.
    pub fn as_result(&self) -> Result<&[Vec<f32>]> {
        match &self.status {
            ScoreStatus::Served(l) | ScoreStatus::ServedStale(l) => Ok(l.as_slice()),
            ScoreStatus::Shed => Err(Error::Overloaded(
                "plan evicted by admission before the batch ran".into(),
            )),
            ScoreStatus::DeadlineExceeded { deadline } => Err(Error::DeadlineExceeded {
                deadline: *deadline,
            }),
            ScoreStatus::Throttled => Err(Error::Overloaded(
                "tenant rate limit exceeded and no cached response".into(),
            )),
            ScoreStatus::Failed(e) => Err(e.clone()),
        }
    }
}

/// One pending request inside a coalesced group.
struct PendingReq {
    /// Position in the plan's FIFO (per-plan sequence number).
    seq: Ticket,
    /// Globally unique submission ticket (what the caller holds).
    ticket: Ticket,
    targets: Vec<u32>,
    /// Deadline as `(expires_after, budget)`: the request expires once
    /// the clock moves **past** `expires_after` (same `>` rule as
    /// `max_wait`); `budget` is the post-clamp tick allowance, carried
    /// into the terminal status.
    deadline: Option<(u64, u64)>,
}

/// Requests sharing one feature snapshot, awaiting one batched run.
struct Group {
    features: Option<FeatureSnapshot>,
    /// Logical tick the group was opened at (drives `max_wait`).
    first_tick: u64,
    requests: Vec<PendingReq>,
}

impl Group {
    fn matches(&self, features: &Option<FeatureSnapshot>) -> bool {
        match (&self.features, features) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// One plan's pending work: open groups (arrival order) plus the FIFO
/// release gate for completed responses.
#[derive(Default)]
struct RequestQueue {
    seqs: TicketLine,
    reorder: ReorderBuffer<ScoreResponse>,
    groups: Vec<Group>,
}

/// The serving front end: a synchronous, deterministic core that owns the
/// plan cache, the admission controller, and the per-plan micro-batchers.
///
/// Drive it with [`GnnServer::submit`] (enqueue, possibly flush a full
/// batch), [`GnnServer::tick`] (advance logical time, flush aged groups),
/// and [`GnnServer::drain`] (flush everything). Completed responses are
/// collected with [`GnnServer::take`] or [`GnnServer::drain_ready`].
pub struct GnnServer<'a> {
    cfg: ServeConfig,
    models: FxHashMap<u64, &'a GnnModel>,
    graphs: FxHashMap<u64, &'a Graph>,
    cache: PlanCache<'a>,
    admission: AdmissionController,
    queues: FxHashMap<PlanKey, RequestQueue>,
    /// First-submission order of plan keys — the deterministic flush
    /// iteration order (hash-map iteration order is not stable).
    queue_order: Vec<PlanKey>,
    tickets: TicketLine,
    /// Released responses, keyed by ticket (ascending = submission order).
    ready: BTreeMap<u64, ScoreResponse>,
    clock: u64,
    pending: usize,
    stats: ServerStats,
    /// Consecutive failed batch runs per plan (reset by any success).
    failures: FxHashMap<PlanKey, u32>,
    /// Plans currently refusing new submissions (see
    /// [`ServeConfig::quarantine_after`]).
    quarantined: FxHashSet<PlanKey>,
    /// Per-tenant token buckets ([`ServeConfig::rate_limit`]).
    limiter: TenantRateLimiter,
    /// Per-plan failure-rate breakers ([`ServeConfig::breaker`]).
    breakers: FxHashMap<PlanKey, CircuitBreaker>,
    /// Degraded-mode response rows ([`ServeConfig::response_cache`]).
    responses: ResponseCache,
}

impl<'a> GnnServer<'a> {
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let admission = AdmissionController::new(cfg.memory_budget, cfg.policy);
        let responses = ResponseCache::new(cfg.response_cache);
        GnnServer {
            cfg,
            models: FxHashMap::default(),
            graphs: FxHashMap::default(),
            cache: PlanCache::new(),
            admission,
            queues: FxHashMap::default(),
            queue_order: Vec::new(),
            tickets: TicketLine::new(),
            ready: BTreeMap::new(),
            clock: 0,
            pending: 0,
            stats: ServerStats::default(),
            failures: FxHashMap::default(),
            quarantined: FxHashSet::default(),
            limiter: TenantRateLimiter::new(),
            breakers: FxHashMap::default(),
            responses,
        }
    }

    /// Register a model under a caller-chosen id. Ids are immutable: a
    /// duplicate registration is a typed [`Error::InvalidConfig`] and
    /// leaves the original binding untouched (re-pointing an id under live
    /// cached plans would silently serve stale weights).
    pub fn register_model(&mut self, id: u64, model: &'a GnnModel) -> Result<()> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.models.entry(id) {
            e.insert(model);
            Ok(())
        } else {
            Err(Error::InvalidConfig(format!(
                "duplicate model id {id}: ids are immutable once registered"
            )))
        }
    }

    /// Register a graph under a caller-chosen id (same rules as
    /// [`GnnServer::register_model`]).
    pub fn register_graph(&mut self, id: u64, graph: &'a Graph) -> Result<()> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.graphs.entry(id) {
            e.insert(graph);
            Ok(())
        } else {
            Err(Error::InvalidConfig(format!(
                "duplicate graph id {id}: ids are immutable once registered"
            )))
        }
    }

    /// Enqueue a request. Plans (and admission-gates) the configuration on
    /// first use; flushes the request's group immediately when it reaches
    /// `max_batch`. Returns the ticket the response will carry.
    ///
    /// Errors do not enqueue anything: unknown ids, shape mismatches and
    /// admission rejections all fail fast.
    pub fn submit(&mut self, req: ScoreRequest) -> Result<Ticket> {
        let key = req.plan_key();
        // Serve-plane events carry `epoch = tick, step = 0`; pre-ticket
        // verdicts sit at `Site::Server`, per-ticket lifecycle at
        // `Site::Ticket`.
        let trace = self.cfg.trace.at_epoch(self.clock);
        // Quarantined plans fast-fail before any lookup or planning:
        // queueing more work onto a configuration that keeps failing only
        // manufactures more `Failed` responses.
        if self.quarantined.contains(&key) {
            self.stats.quarantine_rejections += 1;
            trace.emit(
                0,
                Site::Server,
                Payload::Admission {
                    outcome: AdmissionOutcome::Quarantined,
                },
            );
            return Err(Error::InvalidConfig(format!(
                "plan quarantined after {} consecutive failed runs \
                 (model {}, graph {}); a successful run of pending work \
                 lifts it",
                self.cfg.quarantine_after, req.model, req.graph
            )));
        }
        let model = *self
            .models
            .get(&req.model)
            .ok_or_else(|| Error::InvalidConfig(format!("unregistered model id {}", req.model)))?;
        let graph = *self
            .graphs
            .get(&req.graph)
            .ok_or_else(|| Error::InvalidConfig(format!("unregistered graph id {}", req.graph)))?;

        // Validate the request against the registered shapes before any
        // planning or queueing (and before any ticket is issued), so bad
        // requests never poison a batch or leave a gap in a plan's FIFO.
        // The O(V) snapshot scan runs only for a snapshot that would OPEN
        // a group: coalescing is by `Arc` identity, so every later request
        // naming the same snapshot joins an already-validated group.
        let joins_group = self
            .queues
            .get(&key)
            .is_some_and(|q| q.groups.iter().any(|g| g.matches(&req.features)));
        if !joins_group {
            if let Some(snap) = &req.features {
                if snap.len() != graph.n_nodes() {
                    return Err(Error::InvalidConfig(format!(
                        "snapshot has {} rows for {} nodes",
                        snap.len(),
                        graph.n_nodes()
                    )));
                }
                if let Some(bad) = snap.iter().find(|r| r.len() != model.in_dim()) {
                    return Err(Error::InvalidConfig(format!(
                        "snapshot row width {} does not match model input ({})",
                        bad.len(),
                        model.in_dim()
                    )));
                }
            }
        }
        if let Some(&bad) = req.targets.iter().find(|&&v| v as usize >= graph.n_nodes()) {
            return Err(Error::InvalidGraph(format!(
                "target node {bad} out of range ({} nodes)",
                graph.n_nodes()
            )));
        }
        let n_nodes = graph.n_nodes();

        // Deadline clamp: tighten a deadline the request already carries,
        // never impose one (see `ServeConfig::deadline_clamp`).
        let deadline = match (req.deadline, self.cfg.deadline_clamp) {
            (Some(d), Some(clamp)) => Some(d.min(clamp)),
            (d, _) => d,
        };

        // Per-tenant rate limiting: one token per tenant-carrying request.
        // Checked before any planning — refusing work cheaply is the whole
        // point of back-pressure.
        if let (Some(rl), Some(tenant)) = (self.cfg.rate_limit, req.tenant) {
            if !self.limiter.try_acquire(&rl, tenant, self.clock) {
                return match rl.policy {
                    OverflowPolicy::Reject => {
                        self.stats.overload.throttled += 1;
                        trace.emit(
                            0,
                            Site::Server,
                            Payload::Limiter {
                                outcome: LimiterOutcome::Throttled,
                            },
                        );
                        Err(Error::Overloaded(format!(
                            "tenant {tenant} exceeded its rate limit \
                             ({} tokens, +{}/tick)",
                            rl.capacity, rl.refill_per_tick
                        )))
                    }
                    OverflowPolicy::Degrade => {
                        trace.emit(
                            0,
                            Site::Server,
                            Payload::Limiter {
                                outcome: LimiterOutcome::Degraded,
                            },
                        );
                        Ok(self.resolve_degraded(
                            key,
                            &req.features,
                            &req.targets,
                            n_nodes,
                            req.tenant,
                        ))
                    }
                };
            }
        }

        // Circuit breaker: an Open plan runs nothing — answer stale from
        // the response cache when possible, fast-fail otherwise. HalfOpen
        // admits normally (the next flushed batch is the probe).
        if let Some(bc) = self.cfg.breaker {
            let clock = self.clock;
            let open = self
                .breakers
                .get_mut(&key)
                .is_some_and(|b| b.state(&bc, clock) == BreakerState::Open);
            if open {
                self.stats.overload.breaker_rejections += 1;
                trace.emit(
                    0,
                    Site::Server,
                    Payload::Breaker {
                        action: BreakerAction::FastFail,
                    },
                );
                return match self.stale_lookup(&key, &req.features, &req.targets, n_nodes) {
                    Some(rows) => {
                        let ticket = self.tickets.issue();
                        self.stats.submitted += 1;
                        self.stats.overload.served_stale += 1;
                        trace.emit(
                            0,
                            Site::Ticket(ticket.0),
                            Payload::Submitted { tenant: req.tenant },
                        );
                        trace.emit(
                            0,
                            Site::Ticket(ticket.0),
                            Payload::Terminal {
                                status: TerminalStatus::ServedStale,
                            },
                        );
                        self.ready.insert(
                            ticket.0,
                            ScoreResponse {
                                ticket,
                                status: ScoreStatus::ServedStale(rows),
                            },
                        );
                        Ok(ticket)
                    }
                    None => Err(Error::Overloaded(format!(
                        "circuit breaker open for model {} graph {} \
                         (failure rate tripped; probes resume after {} ticks)",
                        req.model, req.graph, bc.cooldown_ticks
                    ))),
                };
            }
        }

        // Plan + admission-gate on first use of this configuration.
        if self.cache.contains(&key) {
            self.stats.plan_cache_hits += 1;
        } else {
            // An Auto plan picks its backend against the budget the policy
            // can actually offer it — the per-plan §IV-A decision nested
            // inside the fleet-wide one. Under `Reject` that is what is
            // left of the fleet; under `ShedOldest` it is the whole
            // budget, because admission will evict older plans to make
            // room for the newcomer's choice.
            let remaining = self.admission.remaining();
            let plannable = match self.cfg.policy {
                AdmissionPolicy::Reject => remaining,
                AdmissionPolicy::ShedOldest => self.cfg.memory_budget,
            };
            let mut builder = InferenceSession::builder()
                .model(model)
                .graph(graph)
                .workers(req.workers)
                .strategy(req.strategy)
                .backend(req.backend)
                .memory_budget(plannable);
            if let Some(bytes) = req.spill_budget {
                builder = builder.spill_budget(bytes);
                if let Some(dir) = &self.cfg.spill_dir {
                    builder = builder.spill_dir(dir.clone());
                }
            }
            if let Some(fp) = &self.cfg.fault_plan {
                builder = builder.fault_plan(fp.clone());
            }
            if let Some(rp) = self.cfg.recovery {
                builder = builder.recovery(rp);
            }
            if let Some(t) = &self.cfg.transport {
                builder = builder.transport(std::sync::Arc::clone(t));
            }
            let plan = builder.plan()?;
            let bytes = plan_residency(&plan);
            match self.admission.try_admit(key, bytes) {
                Admission::Admitted => {
                    trace.emit(
                        0,
                        Site::Server,
                        Payload::Admission {
                            outcome: AdmissionOutcome::Admitted,
                        },
                    );
                }
                Admission::AdmittedAfterShedding(shed) => {
                    trace.emit(
                        0,
                        Site::Server,
                        Payload::Admission {
                            outcome: AdmissionOutcome::Admitted,
                        },
                    );
                    for k in &shed {
                        self.evict(k);
                    }
                }
                Admission::Rejected => {
                    self.stats.rejected += 1;
                    trace.emit(
                        0,
                        Site::Server,
                        Payload::Admission {
                            outcome: AdmissionOutcome::Rejected,
                        },
                    );
                    return Err(Error::InvalidConfig(format!(
                        "admission denied: plan needs {bytes} B peak residency, fleet has \
                         {remaining} of {} B",
                        self.admission.budget()
                    )));
                }
            }
            self.cache.insert(key, plan);
            self.stats.plans_built += 1;
        }

        // Enqueue into the (possibly new) queue, coalescing by snapshot
        // identity.
        if !self.queue_order.contains(&key) {
            self.queue_order.push(key);
        }
        let clock = self.clock;
        let ticket = self.tickets.issue();
        let q = self.queues.entry(key).or_default();
        let seq = q.seqs.issue();
        let gi = match q.groups.iter().position(|g| g.matches(&req.features)) {
            Some(i) => i,
            None => {
                q.groups.push(Group {
                    features: req.features.clone(),
                    first_tick: clock,
                    requests: Vec::new(),
                });
                q.groups.len() - 1
            }
        };
        q.groups[gi].requests.push(PendingReq {
            seq,
            ticket,
            targets: req.targets,
            deadline: deadline.map(|d| (clock + d, d)),
        });
        let full = q.groups[gi].requests.len() >= self.cfg.max_batch;
        trace.emit(
            0,
            Site::Ticket(ticket.0),
            Payload::Submitted { tenant: req.tenant },
        );
        trace.emit(
            0,
            Site::Ticket(ticket.0),
            Payload::Enqueued {
                group_len: q.groups[gi].requests.len() as u64,
            },
        );
        self.pending += 1;
        self.stats.submitted += 1;
        self.stats.queue_depth_high_water = self.stats.queue_depth_high_water.max(self.pending);
        if full {
            self.flush_group(key, gi);
        }
        Ok(ticket)
    }

    /// Advance logical time by one tick and flush every group whose oldest
    /// request has now waited at least `max_wait` full ticks (see
    /// [`ServeConfig::max_wait`] for the same-tick-submit rule). Returns
    /// the number of requests completed by this tick.
    pub fn tick(&mut self) -> usize {
        self.clock += 1;
        self.flush_due(false)
    }

    /// Flush every pending group regardless of age (shutdown / test
    /// barrier). Returns the number of requests completed.
    pub fn drain(&mut self) -> usize {
        self.flush_due(true)
    }

    /// Remove and return the response for `ticket`, if it is ready.
    pub fn take(&mut self, ticket: Ticket) -> Option<ScoreResponse> {
        self.ready.remove(&ticket.0)
    }

    /// Remove and return every ready response, in ascending ticket
    /// (submission) order.
    pub fn drain_ready(&mut self) -> Vec<ScoreResponse> {
        std::mem::take(&mut self.ready).into_values().collect()
    }

    /// Requests enqueued but not yet executed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Responses ready for pickup.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The logical clock ([`GnnServer::tick`] increments it).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Cached plans alive right now.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Plans currently quarantined against new submissions (tripped by
    /// [`ServeConfig::quarantine_after`], lifted by a successful run).
    pub fn quarantined_plans(&self) -> usize {
        self.quarantined.len()
    }

    /// Logits rows currently held by the degraded-mode response cache.
    pub fn cached_responses(&self) -> usize {
        self.responses.len()
    }

    /// The circuit-breaker state of `key`'s plan right now. `None` when
    /// breakers are disabled or the plan has never completed a run.
    pub fn breaker_state(&mut self, key: &PlanKey) -> Option<BreakerState> {
        let bc = self.cfg.breaker?;
        let clock = self.clock;
        self.breakers.get_mut(key).map(|b| b.state(&bc, clock))
    }

    /// Flush due (or, with `all`, every) groups in deterministic order:
    /// plans in first-submission order, groups in arrival order. The
    /// deadline-expiry pass runs first, so expired work never occupies a
    /// batch slot in the flushes that follow.
    fn flush_due(&mut self, all: bool) -> usize {
        let completed_before = self.completed();
        self.expire_deadlines();
        let keys = self.queue_order.clone();
        for key in keys {
            while let Some(q) = self.queues.get(&key) {
                // `>` not `>=`: the partial interval a submit lands in is
                // not a full tick of waiting. A group opened at clock N
                // has waited `clock - N - 1` full ticks, so it is due once
                // `clock - N > max_wait` — which keeps `max_wait: 0` as
                // "flush at the very next tick" while giving every larger
                // value its documented full-tick meaning.
                let due = q.groups.iter().position(|g| {
                    all || self.clock.saturating_sub(g.first_tick) > self.cfg.max_wait
                });
                let Some(gi) = due else { break };
                self.flush_group(key, gi);
            }
        }
        self.completed() - completed_before
    }

    fn completed(&self) -> usize {
        (self.stats.served
            + self.stats.failed
            + self.stats.shed
            + self.stats.overload.deadline_exceeded
            + self.stats.overload.served_stale
            + self.stats.overload.throttled) as usize
    }

    /// The deadline-expiry pass: resolve every queued request whose
    /// deadline has passed (`clock > submit_clock + deadline` — the same
    /// full-tick rule as `max_wait` aging) as
    /// [`ScoreStatus::DeadlineExceeded`], *through the plan's FIFO gate*
    /// (expired requests hold per-plan seqs, so releasing them any other
    /// way would wedge the gate). Groups emptied by expiry are removed so
    /// they can never flush as zero-request batches.
    fn expire_deadlines(&mut self) {
        let clock = self.clock;
        let trace = self.cfg.trace.at_epoch(clock);
        let keys = self.queue_order.clone();
        for key in keys {
            let Some(q) = self.queues.get_mut(&key) else {
                continue;
            };
            let mut expired = 0u64;
            for g in &mut q.groups {
                let mut kept = Vec::with_capacity(g.requests.len());
                for req in g.requests.drain(..) {
                    match req.deadline {
                        Some((expires_after, budget)) if clock > expires_after => {
                            expired += 1;
                            trace.emit(
                                0,
                                Site::Ticket(req.ticket.0),
                                Payload::Terminal {
                                    status: TerminalStatus::DeadlineExceeded,
                                },
                            );
                            q.reorder.push(
                                req.seq,
                                ScoreResponse {
                                    ticket: req.ticket,
                                    status: ScoreStatus::DeadlineExceeded { deadline: budget },
                                },
                            );
                        }
                        _ => kept.push(req),
                    }
                }
                g.requests = kept;
            }
            if expired == 0 {
                continue;
            }
            q.groups.retain(|g| !g.requests.is_empty());
            self.pending -= expired as usize;
            self.stats.overload.deadline_exceeded += expired;
            for resp in q.reorder.drain_ready() {
                self.ready.insert(resp.ticket.0, resp);
            }
        }
    }

    /// Assemble a stale answer for `targets` (empty = every node) if the
    /// response cache holds **every** requested row — a partial answer is
    /// no answer. Counts one response-cache hit or miss per lookup.
    fn stale_lookup(
        &mut self,
        key: &PlanKey,
        features: &Option<FeatureSnapshot>,
        targets: &[u32],
        n_nodes: usize,
    ) -> Option<Arc<Vec<Vec<f32>>>> {
        let all: Vec<u32>;
        let wanted: &[u32] = if targets.is_empty() {
            all = (0..n_nodes as u32).collect();
            &all
        } else {
            targets
        };
        let mut rows = Vec::with_capacity(wanted.len());
        for &v in wanted {
            match self.responses.get(key, features, v) {
                Some(row) => rows.push(row.to_vec()),
                None => {
                    self.stats.overload.cache_misses += 1;
                    self.cfg.trace.at_epoch(self.clock).emit(
                        0,
                        Site::Server,
                        Payload::Cache { hit: false },
                    );
                    return None;
                }
            }
        }
        self.stats.overload.cache_hits += 1;
        self.cfg
            .trace
            .at_epoch(self.clock)
            .emit(0, Site::Server, Payload::Cache { hit: true });
        Some(Arc::new(rows))
    }

    /// Resolve a rate-limited request on the degraded path: a ticket is
    /// issued and immediately resolved — [`ScoreStatus::ServedStale`] on a
    /// full response-cache hit, [`ScoreStatus::Throttled`] otherwise. The
    /// request is never enqueued and takes **no per-plan seq**: the
    /// degraded path bypasses the FIFO gate by design (it must neither
    /// wait behind nor hold up fresh work).
    fn resolve_degraded(
        &mut self,
        key: PlanKey,
        features: &Option<FeatureSnapshot>,
        targets: &[u32],
        n_nodes: usize,
        tenant: Option<u64>,
    ) -> Ticket {
        let ticket = self.tickets.issue();
        self.stats.submitted += 1;
        let trace = self.cfg.trace.at_epoch(self.clock);
        trace.emit(0, Site::Ticket(ticket.0), Payload::Submitted { tenant });
        let (status, terminal) = match self.stale_lookup(&key, features, targets, n_nodes) {
            Some(rows) => {
                self.stats.overload.served_stale += 1;
                (ScoreStatus::ServedStale(rows), TerminalStatus::ServedStale)
            }
            None => {
                self.stats.overload.throttled += 1;
                (ScoreStatus::Throttled, TerminalStatus::Throttled)
            }
        };
        trace.emit(
            0,
            Site::Ticket(ticket.0),
            Payload::Terminal { status: terminal },
        );
        self.ready
            .insert(ticket.0, ScoreResponse { ticket, status });
        ticket
    }

    /// Execute one coalesced group: one `run`/`run_with_features` call,
    /// per-request logits sliced from its output, responses released
    /// through the plan's FIFO gate.
    fn flush_group(&mut self, key: PlanKey, gi: usize) {
        let trace = self.cfg.trace.at_epoch(self.clock);
        let Some(q) = self.queues.get_mut(&key) else {
            return;
        };
        let group = q.groups.remove(gi);
        self.pending -= group.requests.len();
        let Some(plan) = self.cache.get(&key) else {
            // A flushed group whose plan vanished from the cache is a
            // serve-layer bug (eviction is supposed to shed the queue with
            // it) — but it must cost the affected requests, not the whole
            // process: resolve the group with a typed internal error and
            // keep serving.
            let err = Error::Internal(format!(
                "flushed batch for model {} graph {} has no cached plan",
                key.model, key.graph
            ));
            if let Some(q) = self.queues.get_mut(&key) {
                for req in group.requests {
                    self.stats.failed += 1;
                    trace.emit(
                        0,
                        Site::Ticket(req.ticket.0),
                        Payload::Terminal {
                            status: TerminalStatus::Failed,
                        },
                    );
                    q.reorder.push(
                        req.seq,
                        ScoreResponse {
                            ticket: req.ticket,
                            status: ScoreStatus::Failed(err.clone()),
                        },
                    );
                }
                for resp in q.reorder.drain_ready() {
                    self.ready.insert(resp.ticket.0, resp);
                }
            } else {
                // The queue vanished mid-flush too: no FIFO gate is left
                // to order these responses, so fail them straight into the
                // ready map instead of aborting the server.
                for req in group.requests {
                    self.stats.failed += 1;
                    trace.emit(
                        0,
                        Site::Ticket(req.ticket.0),
                        Payload::Terminal {
                            status: TerminalStatus::Failed,
                        },
                    );
                    self.ready.insert(
                        req.ticket.0,
                        ScoreResponse {
                            ticket: req.ticket,
                            status: ScoreStatus::Failed(err.clone()),
                        },
                    );
                }
            }
            return;
        };
        self.stats.batches += 1;
        // THE batching contract: a coalesced group is served by exactly
        // one *successful* plan execution — bit-identical to the caller
        // making this very call itself. A transient failure (lost worker,
        // spill I/O) is re-run up to `max_run_retries` times: runs are
        // deterministic and the plan's fault budgets drain across runs,
        // so the re-run reflects the cluster after the event, not a
        // replay of it. Permanent errors surface immediately.
        let mut attempts_left = self.cfg.max_run_retries;
        let outcome = loop {
            let r = match &group.features {
                Some(snap) => plan.run_with_features(snap),
                None => plan.run(),
            };
            match r {
                Err(e) if e.is_transient() && attempts_left > 0 => {
                    attempts_left -= 1;
                    self.stats.run_retries += 1;
                }
                other => break other,
            }
        };
        trace.emit(
            0,
            Site::Server,
            Payload::EngineRun {
                // A compact, deterministic plan fingerprint for the trace
                // (the full key does not fit one u64).
                plan: (key.model << 32) ^ key.graph,
                batch: group.requests.len() as u64,
                retries: u64::from(self.cfg.max_run_retries - attempts_left),
                ok: outcome.is_ok(),
            },
        );
        // Feed the run's outcome to the plan's circuit breaker (the soft,
        // failure-rate containment tier; see `crate::breaker`). A HalfOpen
        // breaker treats this run as its probe.
        if let Some(bc) = self.cfg.breaker {
            let clock = self.clock;
            let b = self.breakers.entry(key).or_default();
            if b.record(&bc, clock, outcome.is_ok()) {
                self.stats.overload.breaker_opens += 1;
                trace.emit(
                    0,
                    Site::Server,
                    Payload::Breaker {
                        action: BreakerAction::Opened,
                    },
                );
            }
        }
        // A successful run refreshes the degraded-mode response cache:
        // every node's row, keyed by (plan, snapshot identity, node), in
        // deterministic node order.
        if self.cfg.response_cache > 0 {
            if let Ok(out) = &outcome {
                for (v, row) in out.logits.iter().enumerate() {
                    self.responses
                        .insert(key, &group.features, v as u32, row.clone());
                }
            }
        }
        let Some(q) = self.queues.get_mut(&key) else {
            // Same containment as above: a vanished queue costs this group
            // its FIFO ordering, not the process. Fail the requests
            // straight into the ready map.
            let err = Error::Internal(format!(
                "queue for model {} graph {} vanished mid-flush",
                key.model, key.graph
            ));
            for req in group.requests {
                self.stats.failed += 1;
                trace.emit(
                    0,
                    Site::Ticket(req.ticket.0),
                    Payload::Terminal {
                        status: TerminalStatus::Failed,
                    },
                );
                self.ready.insert(
                    req.ticket.0,
                    ScoreResponse {
                        ticket: req.ticket,
                        status: ScoreStatus::Failed(err.clone()),
                    },
                );
            }
            return;
        };
        match outcome {
            Ok(out) => {
                self.failures.remove(&key);
                // One good run lifts a quarantine: the plan demonstrably
                // serves again (the failure streak was a transient cluster
                // condition, now drained).
                self.quarantined.remove(&key);
                self.stats.message_bytes.add(out.report.message_bytes);
                self.stats.spilled_bytes += out.report.spilled_bytes;
                self.stats.engine_retries += out.report.retries;
                self.stats.checkpoints += out.report.checkpoints;
                self.stats.modelled_run_secs += out.report.total_wall_secs();
                // Full-logits requests share the run's output behind one
                // Arc — a group of them costs one allocation, not one V×C
                // copy per request.
                let full = Arc::new(out.logits);
                for req in group.requests {
                    let logits = if req.targets.is_empty() {
                        Arc::clone(&full)
                    } else {
                        Arc::new(
                            req.targets
                                .iter()
                                .map(|&v| full[v as usize].clone())
                                .collect(),
                        )
                    };
                    self.stats.served += 1;
                    trace.emit(
                        0,
                        Site::Ticket(req.ticket.0),
                        Payload::Terminal {
                            status: TerminalStatus::Served,
                        },
                    );
                    q.reorder.push(
                        req.seq,
                        ScoreResponse {
                            ticket: req.ticket,
                            status: ScoreStatus::Served(logits),
                        },
                    );
                }
            }
            Err(e) => {
                // The failed run poisons nothing beyond this group: the
                // plan, its cache entry, and its FIFO stay live, and the
                // next group runs independently. Only the *streak* is
                // tracked — enough consecutive failures quarantine the
                // plan against new submissions.
                let streak = self.failures.entry(key).or_insert(0);
                *streak += 1;
                if self.cfg.quarantine_after > 0
                    && *streak >= self.cfg.quarantine_after
                    && self.quarantined.insert(key)
                {
                    self.stats.quarantined += 1;
                }
                for req in group.requests {
                    self.stats.failed += 1;
                    trace.emit(
                        0,
                        Site::Ticket(req.ticket.0),
                        Payload::Terminal {
                            status: TerminalStatus::Failed,
                        },
                    );
                    q.reorder.push(
                        req.seq,
                        ScoreResponse {
                            ticket: req.ticket,
                            status: ScoreStatus::Failed(e.clone()),
                        },
                    );
                }
            }
        }
        for resp in q.reorder.drain_ready() {
            self.ready.insert(resp.ticket.0, resp);
        }
    }

    /// Drop an evicted plan: its cache entry goes away and every pending
    /// request completes — [`ScoreStatus::ServedStale`] when the response
    /// cache still holds a full answer for it, [`ScoreStatus::Shed`]
    /// otherwise. (The admission controller already released its
    /// residency; response-cache rows outlive the plan on purpose.)
    fn evict(&mut self, key: &PlanKey) {
        self.cache.remove(key);
        self.failures.remove(key);
        self.quarantined.remove(key);
        self.breakers.remove(key);
        let n_nodes = self.graphs.get(&key.graph).map_or(0, |g| g.n_nodes());
        let trace = self.cfg.trace.at_epoch(self.clock);
        if let Some(mut q) = self.queues.remove(key) {
            for group in q.groups.drain(..) {
                self.pending -= group.requests.len();
                let features = group.features;
                for req in group.requests {
                    let (status, terminal) =
                        match self.stale_lookup(key, &features, &req.targets, n_nodes) {
                            Some(rows) => {
                                self.stats.overload.served_stale += 1;
                                (ScoreStatus::ServedStale(rows), TerminalStatus::ServedStale)
                            }
                            None => {
                                self.stats.shed += 1;
                                (ScoreStatus::Shed, TerminalStatus::Shed)
                            }
                        };
                    trace.emit(
                        0,
                        Site::Ticket(req.ticket.0),
                        Payload::Terminal { status: terminal },
                    );
                    q.reorder.push(
                        req.seq,
                        ScoreResponse {
                            ticket: req.ticket,
                            status,
                        },
                    );
                }
            }
            // Every outstanding seq is now pushed, so the gate releases
            // everything this plan still owed.
            for resp in q.reorder.drain_ready() {
                self.ready.insert(resp.ticket.0, resp);
            }
        }
        self.queue_order.retain(|k| k != key);
    }
}

/// The residency admission gates on: the plan's predicted peak per-worker
/// bytes on its *resolved* backend (the number `Backend::Auto` itself
/// compares, so fleet admission and per-plan backend choice speak the same
/// units).
fn plan_residency(plan: &InferencePlan<'_>) -> u64 {
    match plan.backend() {
        Backend::MapReduce => plan.estimate().mapreduce_peak_worker_bytes,
        // Reference plans build no records (see `InferencePlan::build`),
        // so their estimated residency is exactly zero.
        _ => plan.estimate().pregel_peak_worker_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferturbo_core::models::PoolOp;
    use inferturbo_graph::gen::{generate, DegreeSkew, GenConfig};

    fn graph() -> Graph {
        generate(&GenConfig {
            n_nodes: 80,
            n_edges: 400,
            feat_dim: 4,
            classes: 2,
            skew: DegreeSkew::In,
            seed: 11,
            ..GenConfig::default()
        })
    }

    fn model() -> GnnModel {
        GnnModel::sage(4, 8, 2, 2, false, PoolOp::Mean, 1)
    }

    #[test]
    fn coalesced_requests_share_one_run() {
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 3,
            max_wait: 10,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let req = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![0]);
        // Three graph-feature requests coalesce; the third fills the batch
        // and flushes inside submit.
        for _ in 0..3 {
            server.submit(req.clone()).unwrap();
        }
        assert_eq!(server.pending(), 0);
        assert_eq!(server.stats().batches, 1, "one run serves all three");
        assert_eq!(server.stats().served, 3);
        assert!((server.stats().coalescing_ratio() - 3.0).abs() < 1e-12);
        assert_eq!(server.drain_ready().len(), 3);
    }

    #[test]
    fn max_wait_flushes_on_tick_and_distinct_snapshots_do_not_coalesce() {
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 100,
            max_wait: 2,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let snap_a: FeatureSnapshot = Arc::new(
            (0..g.n_nodes() as u32)
                .map(|v| g.node_feat(v).to_vec())
                .collect(),
        );
        let snap_b: FeatureSnapshot = Arc::new(
            (0..g.n_nodes() as u32)
                .map(|v| g.node_feat(v).iter().map(|x| x * 0.5).collect())
                .collect(),
        );
        let base = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![1]);
        server
            .submit(base.clone().with_snapshot(Arc::clone(&snap_a)))
            .unwrap();
        server
            .submit(base.clone().with_snapshot(Arc::clone(&snap_b)))
            .unwrap();
        server
            .submit(base.clone().with_snapshot(Arc::clone(&snap_a)))
            .unwrap();
        assert_eq!(server.pending(), 3);
        assert_eq!(server.tick(), 0, "groups younger than max_wait hold");
        assert_eq!(server.tick(), 0, "one full tick waited, max_wait is 2");
        assert_eq!(server.tick(), 3, "both groups aged out together");
        // Two distinct snapshots -> two runs, three requests.
        assert_eq!(server.stats().batches, 2);
        assert_eq!(server.stats().served, 3);
        assert_eq!(server.stats().queue_depth_high_water, 3);
    }

    #[test]
    fn max_wait_zero_flushes_at_the_very_next_tick() {
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 100,
            max_wait: 0,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let req = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![0]);
        server.submit(req).unwrap();
        assert_eq!(server.tick(), 1, "max_wait 0 = next tick");
    }

    #[test]
    fn same_tick_submit_does_not_age_a_tick_early() {
        // A group opened by a submit landing AFTER a tick() — i.e. during
        // the current logical tick — must still wait max_wait FULL ticks:
        // the partial interval it was born into does not count. With the
        // old `>=` comparison this group flushed one tick early, making
        // max_wait 1 indistinguishable from 0.
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 100,
            max_wait: 1,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let req = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![0]);
        // Advance the clock first so the submit demonstrably lands after
        // a tick within the same logical tick.
        server.tick();
        server.submit(req).unwrap();
        assert_eq!(
            server.tick(),
            0,
            "only a partial tick has passed; max_wait 1 must hold"
        );
        assert_eq!(server.tick(), 1, "one full tick waited; due now");
        // drain() remains the age-independent barrier.
        let req2 = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![1]);
        server.submit(req2).unwrap();
        assert_eq!(server.drain(), 1);
    }

    #[test]
    fn duplicate_registration_is_a_typed_error_and_keeps_the_original() {
        let g = graph();
        let m = model();
        let m2 = GnnModel::sage(4, 8, 2, 2, false, PoolOp::Mean, 2);
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let err = server.register_model(1, &m2).unwrap_err();
        assert!(err.to_string().contains("duplicate model id 1"), "{err}");
        let err = server.register_graph(1, &g).unwrap_err();
        assert!(err.to_string().contains("duplicate graph id 1"), "{err}");
        // The original binding survives: a submit still runs against `m`.
        server
            .submit(
                ScoreRequest::new(1, 1)
                    .with_workers(4)
                    .with_targets(vec![0]),
            )
            .unwrap();
        assert_eq!(server.stats().served, 1);
    }

    #[test]
    fn submit_validates_ids_shapes_and_targets() {
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig::default());
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        assert!(server.submit(ScoreRequest::new(9, 1)).is_err());
        assert!(server.submit(ScoreRequest::new(1, 9)).is_err());
        let short: FeatureSnapshot = Arc::new(vec![vec![0.0; 4]; 3]);
        assert!(server
            .submit(ScoreRequest::new(1, 1).with_snapshot(short))
            .is_err());
        let ragged: FeatureSnapshot = Arc::new(vec![vec![0.0; 5]; 80]);
        assert!(server
            .submit(ScoreRequest::new(1, 1).with_snapshot(ragged))
            .is_err());
        assert!(server
            .submit(ScoreRequest::new(1, 1).with_targets(vec![80]))
            .is_err());
        assert_eq!(server.pending(), 0, "failed submissions never enqueue");
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn negative_zero_lambda_hits_the_same_cached_plan() {
        // Regression: StrategyConfig::key() used to hash lambda by raw bit
        // pattern, so 0.0 vs -0.0 produced distinct PlanKeys for
        // numerically identical strategies — the cache planned (and
        // admission charged) the same configuration twice.
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let mut pos = StrategyConfig::all();
        pos.lambda = 0.0;
        let mut neg = StrategyConfig::all();
        neg.lambda = -0.0;
        let base = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![0]);
        server.submit(base.clone().with_strategy(pos)).unwrap();
        server.submit(base.with_strategy(neg)).unwrap();
        assert_eq!(server.stats().plans_built, 1, "one plan for one strategy");
        assert_eq!(server.stats().plan_cache_hits, 1);
        assert_eq!(server.cached_plans(), 1);
        assert_eq!(
            server.admission().plans(),
            1,
            "residency must not be double-counted"
        );
    }

    #[test]
    fn plan_cache_amortises_planning_across_requests() {
        let g = graph();
        let m = model();
        let mut server = GnnServer::new(ServeConfig {
            max_batch: 1, // every request runs alone
            ..ServeConfig::default()
        });
        server.register_model(1, &m).unwrap();
        server.register_graph(1, &g).unwrap();
        let req = ScoreRequest::new(1, 1)
            .with_workers(4)
            .with_targets(vec![2]);
        for _ in 0..4 {
            server.submit(req.clone()).unwrap();
        }
        assert_eq!(server.stats().plans_built, 1);
        assert_eq!(server.stats().plan_cache_hits, 3);
        assert_eq!(server.cached_plans(), 1);
        assert_eq!(server.stats().batches, 4);
    }
}
