//! Per-tenant rate limiting: tick-refilled token buckets.
//!
//! One production tenant must not be able to starve every other tenant by
//! flooding the intake — the serving layer needs back-pressure that is
//! *per traffic source*, not global. This module implements the classic
//! token bucket, restated on the server's logical clock so traces replay
//! bit-identically: tokens are integers, refill happens lazily from the
//! tick delta at the next acquire, and no wall clock is consulted
//! anywhere.
//!
//! A request carrying a [`ScoreRequest::tenant`](crate::ScoreRequest)
//! pays one token at intake. An empty bucket applies the configured
//! [`OverflowPolicy`]: `Reject` fast-fails the submit with a typed
//! [`Overloaded`](inferturbo_common::Error::Overloaded) error, `Degrade`
//! accepts the request but routes it to the degraded path — served stale
//! from the response cache when a hit exists, resolved
//! [`Throttled`](crate::ScoreStatus::Throttled) otherwise. Untenanted
//! requests (internal traffic, tests) bypass the limiter entirely.

use inferturbo_common::FxHashMap;

/// What happens to a tenant's request once its bucket is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Fail the submit fast with a typed `Error::Overloaded` — nothing is
    /// enqueued and no ticket is issued.
    Reject,
    /// Accept the request onto the degraded path: answered stale from the
    /// response cache on a hit, resolved `Throttled` on a miss. Either
    /// way it never reaches the engine.
    Degrade,
}

/// Token-bucket shape shared by every tenant. All quantities are logical:
/// integer tokens, refill per [`GnnServer::tick`](crate::GnnServer::tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Bucket capacity = the largest same-tick burst a tenant can land.
    pub capacity: u64,
    /// Tokens granted per elapsed tick (capped at `capacity`).
    pub refill_per_tick: u64,
    /// Overflow behaviour once the bucket is empty.
    pub policy: OverflowPolicy,
}

impl RateLimitConfig {
    /// A degrading limiter: `capacity`-sized bursts, `refill` tokens per
    /// tick, overflow served stale when possible.
    pub fn degrade(capacity: u64, refill_per_tick: u64) -> Self {
        RateLimitConfig {
            capacity,
            refill_per_tick,
            policy: OverflowPolicy::Degrade,
        }
    }

    /// A rejecting limiter: overflow fast-fails the submit.
    pub fn reject(capacity: u64, refill_per_tick: u64) -> Self {
        RateLimitConfig {
            capacity,
            refill_per_tick,
            policy: OverflowPolicy::Reject,
        }
    }
}

/// One tenant's bucket. Refill is lazy: the elapsed-tick credit is
/// applied at the next acquire, so the limiter does no per-tick sweep and
/// idle tenants cost nothing.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: u64,
    /// Logical tick the bucket was last refilled at.
    refilled_at: u64,
}

/// The per-tenant limiter: a bucket per tenant id, created full on first
/// sight (a new tenant gets its whole burst allowance).
#[derive(Debug, Default)]
pub struct TenantRateLimiter {
    buckets: FxHashMap<u64, TokenBucket>,
}

impl TenantRateLimiter {
    pub fn new() -> Self {
        TenantRateLimiter::default()
    }

    /// Try to take one token from `tenant`'s bucket at logical time
    /// `now`. Returns whether the request is inside the tenant's rate.
    ///
    /// Deterministic by construction: the outcome depends only on the
    /// tenant's acquire history and the tick deltas between acquires —
    /// the same trace replays to the same admit/deny sequence.
    pub fn try_acquire(&mut self, cfg: &RateLimitConfig, tenant: u64, now: u64) -> bool {
        let b = self.buckets.entry(tenant).or_insert(TokenBucket {
            tokens: cfg.capacity,
            refilled_at: now,
        });
        let elapsed = now.saturating_sub(b.refilled_at);
        b.tokens = b
            .tokens
            .saturating_add(elapsed.saturating_mul(cfg.refill_per_tick))
            .min(cfg.capacity);
        b.refilled_at = now;
        if b.tokens > 0 {
            b.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tenants with a bucket open (i.e. seen at least once).
    pub fn tenants(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let cfg = RateLimitConfig::degrade(3, 1);
        let mut l = TenantRateLimiter::new();
        // A new tenant gets its full burst...
        assert!((0..3).all(|_| l.try_acquire(&cfg, 7, 10)));
        // ...then the bucket is dry within the tick.
        assert!(!l.try_acquire(&cfg, 7, 10));
        // One elapsed tick grants one token; two grant two.
        assert!(l.try_acquire(&cfg, 7, 11));
        assert!(!l.try_acquire(&cfg, 7, 11));
        assert!(l.try_acquire(&cfg, 7, 13));
        assert!(l.try_acquire(&cfg, 7, 13));
        assert!(!l.try_acquire(&cfg, 7, 13));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let cfg = RateLimitConfig::reject(2, 5);
        let mut l = TenantRateLimiter::new();
        assert!(l.try_acquire(&cfg, 1, 0));
        assert!(l.try_acquire(&cfg, 1, 0));
        assert!(!l.try_acquire(&cfg, 1, 0));
        // A long idle stretch never banks more than `capacity`.
        assert!(l.try_acquire(&cfg, 1, 1_000));
        assert!(l.try_acquire(&cfg, 1, 1_000));
        assert!(!l.try_acquire(&cfg, 1, 1_000));
    }

    #[test]
    fn tenants_are_isolated() {
        let cfg = RateLimitConfig::degrade(1, 0);
        let mut l = TenantRateLimiter::new();
        assert!(l.try_acquire(&cfg, 1, 0));
        assert!(!l.try_acquire(&cfg, 1, 0), "tenant 1 is dry");
        assert!(
            l.try_acquire(&cfg, 2, 0),
            "tenant 2's bucket is untouched by tenant 1's burst"
        );
        assert_eq!(l.tenants(), 2);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let cfg = RateLimitConfig::reject(0, 1);
        let mut l = TenantRateLimiter::new();
        assert!(!l.try_acquire(&cfg, 9, 0));
        assert!(!l.try_acquire(&cfg, 9, 100), "refill caps at capacity 0");
    }
}
