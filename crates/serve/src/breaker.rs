//! Per-plan circuit breakers: stop feeding an engine that keeps failing.
//!
//! PR 6's quarantine is the *hard* containment tier: it trips on
//! consecutive lost runs and stays down until pending work happens to
//! succeed. A production front door also needs a *soft* tier that reacts
//! to a failure **rate** — a plan failing half its runs is burning
//! cluster time even if successes keep resetting the consecutive streak —
//! and that re-probes on its own instead of waiting for luck. That is the
//! classic circuit breaker, restated on the server's logical clock:
//!
//! - **Closed** (healthy): every run outcome lands in a sliding window of
//!   per-tick buckets. When a *failure* lands while the window holds at
//!   least [`BreakerConfig::min_runs`] outcomes and the failure share
//!   reaches [`BreakerConfig::trip_pct`], the breaker opens.
//! - **Open**: submits against the plan fast-fail (or are served stale
//!   from the response cache — see the server's degraded path) and no
//!   run executes, for [`BreakerConfig::cooldown_ticks`] full ticks.
//! - **HalfOpen**: after the cooldown, the next flushed batch is the
//!   *probe*. Its success closes the breaker and clears the window; its
//!   failure re-opens it for another cooldown.
//!
//! Everything is integer arithmetic on tick counts, so a replayed trace
//! trips, cools and re-closes at exactly the same points every time.

use std::collections::VecDeque;

/// Failure-rate thresholds and cooldown, all in logical ticks / integer
/// percentages — no wall clock, no floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window length in ticks: outcomes older than this no longer
    /// count against the plan.
    pub window_ticks: u64,
    /// Minimum outcomes inside the window before the rate is judged — a
    /// single failed run out of one must not open the breaker.
    pub min_runs: u64,
    /// Open once a **failure** lands with `failures * 100 >= trip_pct *
    /// total` within the window. The rate is only judged when a failure
    /// arrives — a success can push the window's share *to* the threshold
    /// but never trips the breaker itself.
    pub trip_pct: u64,
    /// Full ticks an open breaker holds before admitting a probe batch.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_ticks: 8,
            min_runs: 4,
            trip_pct: 50,
            cooldown_ticks: 4,
        }
    }
}

/// Observable breaker state (see the module docs for the lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// One plan's breaker. The server keeps one per [`PlanKey`](crate::PlanKey).
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Tick the breaker last opened at (meaningful in Open/HalfOpen).
    opened_at: u64,
    /// Per-tick outcome buckets inside the sliding window, oldest first:
    /// `(tick, successes, failures)`.
    window: VecDeque<(u64, u64, u64)>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new()
    }
}

impl CircuitBreaker {
    pub fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            opened_at: 0,
            window: VecDeque::new(),
        }
    }

    /// Current state at logical time `now`, applying the Open→HalfOpen
    /// transition once the cooldown has elapsed (`now - opened_at >
    /// cooldown_ticks`: the partial tick the breaker opened in does not
    /// count, mirroring `max_wait` aging).
    pub fn state(&mut self, cfg: &BreakerConfig, now: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now.saturating_sub(self.opened_at) > cfg.cooldown_ticks
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Record one run outcome at `now`. Returns `true` when this outcome
    /// *opened* the breaker (Closed→Open on rate, or the HalfOpen probe
    /// failing) so the caller can count `breaker_opens`.
    pub fn record(&mut self, cfg: &BreakerConfig, now: u64, ok: bool) -> bool {
        match self.state(cfg, now) {
            BreakerState::HalfOpen => {
                if ok {
                    // Probe succeeded: the plan demonstrably serves again.
                    // Start from a clean window so the pre-open failures
                    // cannot immediately re-trip it.
                    self.state = BreakerState::Closed;
                    self.window.clear();
                    false
                } else {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                }
            }
            // A run that was already in flight when the breaker opened may
            // still report; it neither closes nor re-times an open breaker.
            BreakerState::Open => false,
            BreakerState::Closed => {
                self.push(cfg, now, ok);
                if ok {
                    // Successes never trip: a healthy outcome must not be
                    // the event that opens the breaker, even if it drags
                    // the window's share onto the threshold.
                    return false;
                }
                let (oks, fails) = self
                    .window
                    .iter()
                    .fold((0u64, 0u64), |(s, f), &(_, o, x)| (s + o, f + x));
                let total = oks + fails;
                if total >= cfg.min_runs && fails * 100 >= cfg.trip_pct * total {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn push(&mut self, cfg: &BreakerConfig, now: u64, ok: bool) {
        while let Some(&(tick, _, _)) = self.window.front() {
            if now.saturating_sub(tick) >= cfg.window_ticks {
                self.window.pop_front();
            } else {
                break;
            }
        }
        match self.window.back_mut() {
            Some(bucket) if bucket.0 == now => {
                if ok {
                    bucket.1 += 1;
                } else {
                    bucket.2 += 1;
                }
            }
            _ => self.window.push_back((now, u64::from(ok), u64::from(!ok))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window_ticks: 4,
            min_runs: 4,
            trip_pct: 50,
            cooldown_ticks: 2,
        }
    }

    #[test]
    fn opens_at_the_failure_rate_threshold_not_before() {
        let cfg = cfg();
        let mut b = CircuitBreaker::new();
        // 3 outcomes < min_runs: even 100% failures hold the breaker.
        assert!(!b.record(&cfg, 0, false));
        assert!(!b.record(&cfg, 0, false));
        assert!(!b.record(&cfg, 0, false));
        assert_eq!(b.state(&cfg, 0), BreakerState::Closed);
        // A success is never the tripping event, even at 3/4 failures.
        assert!(!b.record(&cfg, 0, true));
        assert_eq!(b.state(&cfg, 0), BreakerState::Closed);
        // A failure with min_runs met and 4/5 >= 50% — opens, and
        // record() reports the trip for the breaker_opens counter.
        assert!(b.record(&cfg, 0, false));
        assert_eq!(b.state(&cfg, 0), BreakerState::Open);
    }

    #[test]
    fn below_rate_stays_closed() {
        let cfg = cfg();
        let mut b = CircuitBreaker::new();
        // 1 failure out of 4 = 25% < 50%: closed.
        assert!(!b.record(&cfg, 0, false));
        for _ in 0..3 {
            assert!(!b.record(&cfg, 0, true));
        }
        assert_eq!(b.state(&cfg, 0), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_probe_success_closes_with_a_clean_window() {
        let cfg = cfg();
        let mut b = CircuitBreaker::new();
        for _ in 0..4 {
            b.record(&cfg, 1, false);
        }
        assert_eq!(b.state(&cfg, 1), BreakerState::Open);
        // Cooldown counts full ticks: still open at opened_at + cooldown.
        assert_eq!(b.state(&cfg, 3), BreakerState::Open);
        assert_eq!(b.state(&cfg, 4), BreakerState::HalfOpen);
        // Probe succeeds: closed, and the old failures are forgotten — a
        // single new failure must not re-trip against the stale window.
        assert!(!b.record(&cfg, 4, true));
        assert_eq!(b.state(&cfg, 4), BreakerState::Closed);
        assert!(!b.record(&cfg, 4, false));
        assert_eq!(b.state(&cfg, 4), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_and_retimes_the_cooldown() {
        let cfg = cfg();
        let mut b = CircuitBreaker::new();
        for _ in 0..4 {
            b.record(&cfg, 0, false);
        }
        assert_eq!(b.state(&cfg, 3), BreakerState::HalfOpen);
        assert!(b.record(&cfg, 3, false), "failed probe re-opens");
        assert_eq!(b.state(&cfg, 5), BreakerState::Open, "cooldown restarted");
        assert_eq!(b.state(&cfg, 6), BreakerState::HalfOpen);
    }

    #[test]
    fn old_outcomes_age_out_of_the_window() {
        let cfg = cfg();
        let mut b = CircuitBreaker::new();
        // 3 failures at tick 0 — not yet judged (min_runs).
        for _ in 0..3 {
            b.record(&cfg, 0, false);
        }
        // At tick 4 the window (4 ticks) has dropped them: one success is
        // the only outcome and the breaker stays closed.
        assert!(!b.record(&cfg, 4, true));
        assert_eq!(b.state(&cfg, 4), BreakerState::Closed);
        // Three more successes: 4/4 ok, well under the rate.
        for _ in 0..3 {
            assert!(!b.record(&cfg, 4, true));
        }
        assert_eq!(b.state(&cfg, 4), BreakerState::Closed);
    }
}
