//! Server-lifetime counters — the serving analogue of
//! [`inferturbo_cluster::RunReport`].
//!
//! A `RunReport` describes one run; [`ServerStats`] describes a server's
//! whole life: how many requests arrived, how far batching compressed them
//! into runs (the coalescing ratio), what admission did, how deep the
//! queue got, and the accumulated per-plane message volume of every run
//! executed on the server's behalf.

use inferturbo_cluster::{MessagePlaneBytes, OverloadCounters};
use inferturbo_obs::MetricsRegistry;

/// Counters accumulated by a [`GnnServer`](crate::GnnServer). Cheap to
/// copy out; `Display` prints the one-page operator view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue (excludes admission rejections).
    pub submitted: u64,
    /// Requests answered with logits.
    pub served: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Pending requests completed with `Shed` when their plan was evicted.
    pub shed: u64,
    /// Requests whose batch run failed (e.g. a simulated worker OOM).
    pub failed: u64,
    /// Serve-level re-runs of a transiently-failed batch (bounded by
    /// `ServeConfig::max_run_retries`). Each retry re-executes the whole
    /// coalesced group's run; absorbed retries never surface to callers.
    pub run_retries: u64,
    /// Failures absorbed *inside* runs by the engines — Pregel superstep
    /// replays and MapReduce task re-launches — summed over every executed
    /// run (`RunReport::retries`).
    pub engine_retries: u64,
    /// Pregel recovery checkpoints taken across every executed run
    /// (`RunReport::checkpoints`).
    pub checkpoints: u64,
    /// Times a plan was quarantined after
    /// `ServeConfig::quarantine_after` consecutive failed runs.
    pub quarantined: u64,
    /// Submissions fast-rejected because their plan was quarantined.
    pub quarantine_rejections: u64,
    /// Batched runs executed (each serves one coalesced group).
    pub batches: u64,
    /// Plans built (plan-cache misses).
    pub plans_built: u64,
    /// Requests that found their plan already cached.
    pub plan_cache_hits: u64,
    /// Most requests ever pending at once.
    pub queue_depth_high_water: usize,
    /// The overload plane: deadline expiries, throttling, stale service,
    /// breaker activity and response-cache hit/miss counts (see
    /// [`inferturbo_cluster::OverloadCounters`]).
    pub overload: OverloadCounters,
    /// Message volume by plane, summed over every executed run.
    pub message_bytes: MessagePlaneBytes,
    /// Columnar inbox bytes paged to disk (the out-of-core plane), summed
    /// over every executed run. 0 unless requests plan with a spill
    /// budget.
    pub spilled_bytes: u64,
    /// Modelled cluster wall-clock of every executed run, summed.
    pub modelled_run_secs: f64,
}

impl ServerStats {
    /// Requests served per executed run — the batching win. 1.0 means no
    /// coalescing happened; `max_batch` is the ceiling.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }

    /// Convert into the unified metrics registry (see
    /// [`inferturbo_obs::MetricsRegistry`]). `Display` renders this; the
    /// JSON-lines and Prometheus expositions come for free. All ratios are
    /// denominator-guarded — a zero-traffic server renders `n/a`, never a
    /// NaN.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.section("serve");
        reg.counter("serve.submitted", self.submitted)
            .counter("serve.served", self.served)
            .counter("serve.rejected", self.rejected)
            .counter("serve.shed", self.shed)
            .counter("serve.failed", self.failed);
        reg.section("batches");
        reg.counter("batches.runs", self.batches)
            .ratio(
                "batches.coalescing",
                self.served as f64,
                self.batches as f64,
            )
            .counter(
                "batches.queue_depth_high_water",
                self.queue_depth_high_water as u64,
            );
        reg.section("plans");
        reg.counter("plans.built", self.plans_built)
            .counter("plans.cache_hits", self.plan_cache_hits);
        reg.section("resilience");
        reg.counter("resilience.run_retries", self.run_retries)
            .counter("resilience.engine_retries", self.engine_retries)
            .counter("resilience.checkpoints", self.checkpoints)
            .counter("resilience.quarantined", self.quarantined)
            .counter(
                "resilience.quarantine_rejections",
                self.quarantine_rejections,
            );
        reg.section("overload");
        reg.counter(
            "overload.deadline_exceeded",
            self.overload.deadline_exceeded,
        )
        .counter("overload.throttled", self.overload.throttled)
        .counter("overload.served_stale", self.overload.served_stale)
        .counter("overload.breaker_opens", self.overload.breaker_opens)
        .counter(
            "overload.breaker_fast_fails",
            self.overload.breaker_rejections,
        )
        .ratio(
            "overload.cache_hit",
            self.overload.cache_hits as f64,
            (self.overload.cache_hits + self.overload.cache_misses) as f64,
        );
        reg.section("traffic");
        reg.counter("traffic.columnar_bytes", self.message_bytes.columnar)
            .counter("traffic.legacy_bytes", self.message_bytes.legacy)
            .counter("traffic.spilled_bytes", self.spilled_bytes)
            .gauge("traffic.modelled_run_secs", self.modelled_run_secs);
        reg
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.metrics().render_text().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_ratio_handles_zero_batches() {
        let mut s = ServerStats::default();
        assert_eq!(s.coalescing_ratio(), 0.0);
        s.served = 12;
        s.batches = 4;
        assert!((s.coalescing_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_one_page_and_informative() {
        let s = ServerStats {
            submitted: 10,
            served: 8,
            rejected: 1,
            shed: 1,
            batches: 2,
            queue_depth_high_water: 5,
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("serve.submitted = 10"), "{text}");
        assert!(text.contains("batches.coalescing = 4.00 (8/2)"), "{text}");
        assert!(
            text.contains("batches.queue_depth_high_water = 5"),
            "{text}"
        );
    }

    #[test]
    fn display_surfaces_the_overload_plane() {
        let s = ServerStats {
            overload: OverloadCounters {
                deadline_exceeded: 4,
                throttled: 3,
                served_stale: 2,
                breaker_opens: 1,
                breaker_rejections: 5,
                cache_hits: 2,
                cache_misses: 2,
            },
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("overload.deadline_exceeded = 4"), "{text}");
        assert!(text.contains("overload.throttled = 3"), "{text}");
        assert!(text.contains("overload.served_stale = 2"), "{text}");
        assert!(text.contains("overload.breaker_opens = 1"), "{text}");
        assert!(text.contains("overload.breaker_fast_fails = 5"), "{text}");
        assert!(text.contains("overload.cache_hit = 0.50 (2/4)"), "{text}");
    }

    #[test]
    fn display_surfaces_resilience_counters() {
        let s = ServerStats {
            run_retries: 2,
            engine_retries: 5,
            checkpoints: 7,
            quarantined: 1,
            quarantine_rejections: 3,
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("resilience.run_retries = 2"), "{text}");
        assert!(text.contains("resilience.engine_retries = 5"), "{text}");
        assert!(text.contains("resilience.checkpoints = 7"), "{text}");
        assert!(text.contains("resilience.quarantined = 1"), "{text}");
        assert!(
            text.contains("resilience.quarantine_rejections = 3"),
            "{text}"
        );
    }

    /// The zero-traffic case the hand-rolled `Display` paths used to
    /// mishandle: every ratio must render guarded, never a NaN.
    #[test]
    fn zero_traffic_display_renders_guarded_ratios() {
        let text = ServerStats::default().to_string();
        assert!(text.contains("batches.coalescing = n/a (0/0)"), "{text}");
        assert!(text.contains("overload.cache_hit = n/a (0/0)"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }
}
