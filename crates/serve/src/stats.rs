//! Server-lifetime counters — the serving analogue of
//! [`inferturbo_cluster::RunReport`].
//!
//! A `RunReport` describes one run; [`ServerStats`] describes a server's
//! whole life: how many requests arrived, how far batching compressed them
//! into runs (the coalescing ratio), what admission did, how deep the
//! queue got, and the accumulated per-plane message volume of every run
//! executed on the server's behalf.

use inferturbo_cluster::{MessagePlaneBytes, OverloadCounters};

/// Counters accumulated by a [`GnnServer`](crate::GnnServer). Cheap to
/// copy out; `Display` prints the one-page operator view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue (excludes admission rejections).
    pub submitted: u64,
    /// Requests answered with logits.
    pub served: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Pending requests completed with `Shed` when their plan was evicted.
    pub shed: u64,
    /// Requests whose batch run failed (e.g. a simulated worker OOM).
    pub failed: u64,
    /// Serve-level re-runs of a transiently-failed batch (bounded by
    /// `ServeConfig::max_run_retries`). Each retry re-executes the whole
    /// coalesced group's run; absorbed retries never surface to callers.
    pub run_retries: u64,
    /// Failures absorbed *inside* runs by the engines — Pregel superstep
    /// replays and MapReduce task re-launches — summed over every executed
    /// run (`RunReport::retries`).
    pub engine_retries: u64,
    /// Pregel recovery checkpoints taken across every executed run
    /// (`RunReport::checkpoints`).
    pub checkpoints: u64,
    /// Times a plan was quarantined after
    /// `ServeConfig::quarantine_after` consecutive failed runs.
    pub quarantined: u64,
    /// Submissions fast-rejected because their plan was quarantined.
    pub quarantine_rejections: u64,
    /// Batched runs executed (each serves one coalesced group).
    pub batches: u64,
    /// Plans built (plan-cache misses).
    pub plans_built: u64,
    /// Requests that found their plan already cached.
    pub plan_cache_hits: u64,
    /// Most requests ever pending at once.
    pub queue_depth_high_water: usize,
    /// The overload plane: deadline expiries, throttling, stale service,
    /// breaker activity and response-cache hit/miss counts (see
    /// [`inferturbo_cluster::OverloadCounters`]).
    pub overload: OverloadCounters,
    /// Message volume by plane, summed over every executed run.
    pub message_bytes: MessagePlaneBytes,
    /// Columnar inbox bytes paged to disk (the out-of-core plane), summed
    /// over every executed run. 0 unless requests plan with a spill
    /// budget.
    pub spilled_bytes: u64,
    /// Modelled cluster wall-clock of every executed run, summed.
    pub modelled_run_secs: f64,
}

impl ServerStats {
    /// Requests served per executed run — the batching win. 1.0 means no
    /// coalescing happened; `max_batch` is the ceiling.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} submitted -> {} served, {} rejected, {} shed, {} failed",
            self.submitted, self.served, self.rejected, self.shed, self.failed
        )?;
        writeln!(
            f,
            "  batches: {} runs, coalescing {:.2} req/run, queue high-water {}",
            self.batches,
            self.coalescing_ratio(),
            self.queue_depth_high_water
        )?;
        writeln!(
            f,
            "  plans: {} built, {} cache hits",
            self.plans_built, self.plan_cache_hits
        )?;
        writeln!(
            f,
            "  resilience: {} run retries, {} engine retries, {} checkpoints; \
             {} quarantined ({} submits rejected)",
            self.run_retries,
            self.engine_retries,
            self.checkpoints,
            self.quarantined,
            self.quarantine_rejections
        )?;
        writeln!(
            f,
            "  overload: {} deadline-exceeded, {} throttled, {} served stale; \
             breaker {} opens ({} fast-fails); response cache {:.2} hit ratio \
             ({}/{})",
            self.overload.deadline_exceeded,
            self.overload.throttled,
            self.overload.served_stale,
            self.overload.breaker_opens,
            self.overload.breaker_rejections,
            self.overload.cache_hit_ratio(),
            self.overload.cache_hits,
            self.overload.cache_hits + self.overload.cache_misses
        )?;
        write!(
            f,
            "  traffic: columnar {} B, legacy {} B, spilled {} B; modelled run wall {:.2}s",
            self.message_bytes.columnar,
            self.message_bytes.legacy,
            self.spilled_bytes,
            self.modelled_run_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_ratio_handles_zero_batches() {
        let mut s = ServerStats::default();
        assert_eq!(s.coalescing_ratio(), 0.0);
        s.served = 12;
        s.batches = 4;
        assert!((s.coalescing_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_one_page_and_informative() {
        let s = ServerStats {
            submitted: 10,
            served: 8,
            rejected: 1,
            shed: 1,
            batches: 2,
            queue_depth_high_water: 5,
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("10 submitted"), "{text}");
        assert!(text.contains("coalescing 4.00 req/run"), "{text}");
        assert!(text.contains("high-water 5"), "{text}");
    }

    #[test]
    fn display_surfaces_the_overload_plane() {
        let s = ServerStats {
            overload: OverloadCounters {
                deadline_exceeded: 4,
                throttled: 3,
                served_stale: 2,
                breaker_opens: 1,
                breaker_rejections: 5,
                cache_hits: 2,
                cache_misses: 2,
            },
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("4 deadline-exceeded"), "{text}");
        assert!(text.contains("3 throttled"), "{text}");
        assert!(text.contains("2 served stale"), "{text}");
        assert!(text.contains("breaker 1 opens (5 fast-fails)"), "{text}");
        assert!(text.contains("0.50 hit ratio (2/4)"), "{text}");
    }

    #[test]
    fn display_surfaces_resilience_counters() {
        let s = ServerStats {
            run_retries: 2,
            engine_retries: 5,
            checkpoints: 7,
            quarantined: 1,
            quarantine_rejections: 3,
            ..ServerStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("2 run retries"), "{text}");
        assert!(text.contains("5 engine retries"), "{text}");
        assert!(text.contains("7 checkpoints"), "{text}");
        assert!(
            text.contains("1 quarantined (3 submits rejected)"),
            "{text}"
        );
    }
}
