//! Fleet-wide admission control (paper §IV-A, applied across plans).
//!
//! A single plan decides Pregel vs MapReduce by comparing its own
//! predicted peak per-worker residency against a memory budget. A serving
//! fleet keeps many plans resident at once — each holds vertex states and
//! pooled engine scratch between requests — so the same comparison must be
//! made against the **sum**: a new plan is only admitted while
//! `Σ admitted residency + its residency ≤ budget` (inclusive, matching
//! `Backend::Auto`). Over budget, the configured [`AdmissionPolicy`]
//! decides: reject the newcomer, or shed the oldest admitted plans until
//! it fits.

use crate::cache::PlanKey;
use inferturbo_cluster::FleetEstimate;

/// What to do when a new plan does not fit the remaining fleet budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new plan; admitted plans keep serving.
    Reject,
    /// Evict admitted plans oldest-first until the newcomer fits. Pending
    /// requests of an evicted plan complete with
    /// [`ScoreStatus::Shed`](crate::ScoreStatus::Shed).
    ShedOldest,
}

/// Outcome of [`AdmissionController::try_admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Admitted within the remaining budget.
    Admitted,
    /// Admitted after evicting these plans (admission order, oldest
    /// first). The caller must drop their cached plans and shed their
    /// pending requests.
    AdmittedAfterShedding(Vec<PlanKey>),
    /// Does not fit and the policy forbids (or shedding cannot free
    /// enough). Nothing changed.
    Rejected,
}

/// Tracks the admitted fleet and applies the policy. Pure bookkeeping —
/// the [`GnnServer`](crate::GnnServer) owns the plans themselves.
pub struct AdmissionController {
    budget: u64,
    policy: AdmissionPolicy,
    /// Admission order (oldest first), with each plan's residency bytes.
    admitted: Vec<(PlanKey, u64)>,
    fleet: FleetEstimate,
}

impl AdmissionController {
    pub fn new(budget: u64, policy: AdmissionPolicy) -> Self {
        AdmissionController {
            budget,
            policy,
            admitted: Vec::new(),
            fleet: FleetEstimate::new(),
        }
    }

    /// The global budget the fleet is gated on.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Budget not yet claimed by admitted plans.
    pub fn remaining(&self) -> u64 {
        self.fleet.remaining(self.budget)
    }

    /// Summed residency of the admitted fleet.
    pub fn resident_bytes(&self) -> u64 {
        self.fleet.total_peak_worker_bytes()
    }

    /// Number of admitted plans.
    pub fn plans(&self) -> usize {
        self.fleet.plans()
    }

    /// Try to admit a plan with `bytes` predicted peak residency.
    pub fn try_admit(&mut self, key: PlanKey, bytes: u64) -> Admission {
        if self.fleet.fits(bytes, self.budget) {
            self.fleet.admit(bytes);
            self.admitted.push((key, bytes));
            return Admission::Admitted;
        }
        // A plan larger than the whole budget can never fit; don't shed a
        // working fleet for it.
        if self.policy == AdmissionPolicy::Reject || bytes > self.budget {
            return Admission::Rejected;
        }
        let mut shed = Vec::new();
        while !self.fleet.fits(bytes, self.budget) {
            let (k, b) = self.admitted.remove(0);
            self.fleet.release(b);
            shed.push(k);
        }
        self.fleet.admit(bytes);
        self.admitted.push((key, bytes));
        Admission::AdmittedAfterShedding(shed)
    }

    /// Release an admitted plan (explicit eviction / shutdown). No-op for
    /// unknown keys.
    pub fn release(&mut self, key: &PlanKey) {
        if let Some(i) = self.admitted.iter().position(|(k, _)| k == key) {
            let (_, b) = self.admitted.remove(i);
            self.fleet.release(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferturbo_core::session::Backend;
    use inferturbo_core::StrategyConfig;

    fn key(id: u64) -> PlanKey {
        PlanKey {
            model: id,
            graph: id,
            strategy: StrategyConfig::all().key(),
            workers: 4,
            backend: Backend::Auto,
            spill_budget: None,
        }
    }

    #[test]
    fn reject_policy_is_inclusive_at_the_boundary() {
        let mut ac = AdmissionController::new(1_000, AdmissionPolicy::Reject);
        assert_eq!(ac.try_admit(key(1), 1_000), Admission::Admitted);
        assert_eq!(ac.try_admit(key(2), 1), Admission::Rejected);
        assert_eq!(ac.plans(), 1);
        assert_eq!(ac.remaining(), 0);
    }

    #[test]
    fn shed_oldest_evicts_in_admission_order() {
        let mut ac = AdmissionController::new(1_000, AdmissionPolicy::ShedOldest);
        assert_eq!(ac.try_admit(key(1), 400), Admission::Admitted);
        assert_eq!(ac.try_admit(key(2), 400), Admission::Admitted);
        // 300 needs 100 freed; only key(1) goes.
        assert_eq!(
            ac.try_admit(key(3), 300),
            Admission::AdmittedAfterShedding(vec![key(1)])
        );
        assert_eq!(ac.plans(), 2);
        assert_eq!(ac.resident_bytes(), 700);
        // Larger than the whole budget: rejected without touching the
        // fleet.
        assert_eq!(ac.try_admit(key(4), 1_001), Admission::Rejected);
        assert_eq!(ac.plans(), 2);
    }

    #[test]
    fn release_frees_budget() {
        let mut ac = AdmissionController::new(500, AdmissionPolicy::Reject);
        ac.try_admit(key(1), 500);
        ac.release(&key(1));
        assert_eq!(ac.plans(), 0);
        assert_eq!(ac.try_admit(key(2), 500), Admission::Admitted);
        // Unknown keys are a no-op.
        ac.release(&key(9));
        assert_eq!(ac.plans(), 1);
    }
}
