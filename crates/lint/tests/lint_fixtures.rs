//! Fixture-driven integration tests: each fixture file exercises one rule (or
//! one cross-cutting behaviour) end to end through [`rules::scan_file`], and
//! the ratchet tests drive [`baseline`] exactly the way `itlint --check` does.

use inferturbo_lint::baseline;
use inferturbo_lint::rules::scan_file;

const WALLCLOCK: &str = include_str!("fixtures/wallclock.rs");
const PANIC_IN_LIB: &str = include_str!("fixtures/panic_in_lib.rs");
const UNORDERED_ITER: &str = include_str!("fixtures/unordered_iter.rs");
const RAW_SPAWN: &str = include_str!("fixtures/raw_spawn.rs");
const PROCESS_SPAWN: &str = include_str!("fixtures/process_spawn.rs");
const ENV_READ: &str = include_str!("fixtures/env_read.rs");
const ALLOWS: &str = include_str!("fixtures/allows.rs");
const NO_FALSE_POSITIVES: &str = include_str!("fixtures/no_false_positives.rs");

fn hits(path: &str, src: &str) -> Vec<(String, u32)> {
    scan_file(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn wallclock_fixture_flags_every_clock_read() {
    let got = hits("crates/pregel/src/fixture.rs", WALLCLOCK);
    // Line 1 is the `use std::time::…` import: even naming SystemTime is a
    // wall-clock dependency in scoped code.
    assert_eq!(
        got,
        vec![
            ("wallclock".to_string(), 1),
            ("wallclock".to_string(), 4),
            ("wallclock".to_string(), 5),
            ("wallclock".to_string(), 6),
        ]
    );
}

#[test]
fn wallclock_fixture_is_exempt_under_bench() {
    assert_eq!(hits("crates/bench/src/fixture.rs", WALLCLOCK), vec![]);
}

#[test]
fn panic_fixture_flags_lib_code_and_skips_cfg_test() {
    let got = hits("crates/core/src/fixture.rs", PANIC_IN_LIB);
    assert_eq!(
        got,
        vec![
            ("panic-in-lib".to_string(), 2),
            ("panic-in-lib".to_string(), 3),
            ("panic-in-lib".to_string(), 5),
            ("panic-in-lib".to_string(), 8),
            ("panic-in-lib".to_string(), 9),
        ],
        "nothing inside `#[cfg(test)] mod tests` may be flagged: {got:?}"
    );
}

#[test]
fn unordered_iter_fixture_flags_hash_maps_not_ordered_containers() {
    let got = hits("crates/serve/src/fixture.rs", UNORDERED_ITER);
    assert_eq!(
        got,
        vec![
            ("unordered-iter".to_string(), 13),
            ("unordered-iter".to_string(), 16),
        ],
        "Vec and BTreeMap iteration must stay clean: {got:?}"
    );
}

#[test]
fn unordered_iter_rule_is_scoped_to_deterministic_crates() {
    assert_eq!(hits("crates/tensor/src/fixture.rs", UNORDERED_ITER), vec![]);
}

#[test]
fn raw_spawn_fixture_flags_thread_primitives() {
    let got = hits("crates/serve/src/fixture.rs", RAW_SPAWN);
    assert_eq!(
        got,
        vec![("raw-spawn".to_string(), 2), ("raw-spawn".to_string(), 3)]
    );
    // The parallelism shim itself is the sanctioned home for these calls.
    assert_eq!(hits("crates/common/src/par.rs", RAW_SPAWN), vec![]);
}

#[test]
fn process_spawn_fixture_flags_commands_outside_the_transport_module() {
    // Line 1 is the `use std::process::Command` import (the `process ::
    // Command` path form), line 4 the bare `Command::new`, line 5 the
    // fully-qualified call (both patterns hit it; deduped to one).
    let got = hits("crates/serve/src/fixture.rs", PROCESS_SPAWN);
    assert_eq!(
        got,
        vec![
            ("raw-spawn".to_string(), 1),
            ("raw-spawn".to_string(), 4),
            ("raw-spawn".to_string(), 5),
        ]
    );
    // The transport's worker-spawn module is the sanctioned home for
    // subprocess creation; the thread sanction does NOT leak to it and
    // vice versa.
    assert_eq!(
        hits("crates/cluster/src/transport/spawn.rs", PROCESS_SPAWN),
        vec![]
    );
    assert_eq!(hits("crates/common/src/par.rs", PROCESS_SPAWN), vec![]);
}

#[test]
fn env_read_fixture_flags_env_access_outside_sanctioned_modules() {
    let got = hits("crates/serve/src/fixture.rs", ENV_READ);
    assert_eq!(
        got,
        vec![("env-read".to_string(), 2), ("env-read".to_string(), 3)]
    );
    assert_eq!(hits("crates/cluster/src/fault.rs", ENV_READ), vec![]);
}

#[test]
fn env_read_sanction_covers_only_the_transport_arming_module() {
    // `INFERTURBO_TRANSPORT` / `INFERTURBO_WORKER_BIN` arming is
    // sanctioned in `transport/env.rs`; env reads anywhere else in the
    // transport (or the cluster crate) still flag.
    assert_eq!(
        hits("crates/cluster/src/transport/env.rs", ENV_READ),
        vec![]
    );
    let got = hits("crates/cluster/src/transport/frame.rs", ENV_READ);
    assert_eq!(
        got,
        vec![("env-read".to_string(), 2), ("env-read".to_string(), 3)]
    );
}

#[test]
fn env_read_sanction_covers_only_the_obs_arming_module() {
    // The `INFERTURBO_TRACE` arming hook is sanctioned; any other env
    // read inside `crates/obs` still flags.
    assert_eq!(hits("crates/obs/src/arm.rs", ENV_READ), vec![]);
    let got = hits("crates/obs/src/sink.rs", ENV_READ);
    assert_eq!(
        got,
        vec![("env-read".to_string(), 2), ("env-read".to_string(), 3)]
    );
}

#[test]
fn allow_directives_suppress_only_what_they_name() {
    let got = hits("crates/core/src/fixture.rs", ALLOWS);
    assert_eq!(
        got,
        vec![
            ("panic-in-lib".to_string(), 5),
            ("malformed-allow".to_string(), 6),
            ("panic-in-lib".to_string(), 7),
            ("malformed-allow".to_string(), 8),
        ],
        "lines 3 and 4 are covered by well-formed directives; a reason-less \
         or unknown-rule directive suppresses nothing: {got:?}"
    );
}

#[test]
fn comments_strings_and_raw_strings_never_false_positive() {
    assert_eq!(
        hits("crates/pregel/src/fixture.rs", NO_FALSE_POSITIVES),
        vec![]
    );
}

#[test]
fn ratchet_rejects_increases_and_new_entries() {
    let baseline_text =
        "[[entry]]\nrule = \"panic-in-lib\"\nfile = \"crates/bench/src/a.rs\"\ncount = 3\n";
    let base = baseline::parse(baseline_text).expect("baseline parses");
    let mut current = baseline::Counts::new();
    current.insert(
        (
            "panic-in-lib".to_string(),
            "crates/bench/src/a.rs".to_string(),
        ),
        4,
    );
    current.insert(
        ("wallclock".to_string(), "crates/core/src/b.rs".to_string()),
        1,
    );
    let report = baseline::ratchet(&current, &base);
    assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
    assert!(!report.passes());
}

#[test]
fn ratchet_accepts_decreases_and_reports_them_as_improvements() {
    let baseline_text = concat!(
        "[[entry]]\nrule = \"panic-in-lib\"\nfile = \"crates/bench/src/a.rs\"\ncount = 3\n",
        "[[entry]]\nrule = \"env-read\"\nfile = \"crates/serve/src/c.rs\"\ncount = 1\n",
    );
    let base = baseline::parse(baseline_text).expect("baseline parses");
    let mut current = baseline::Counts::new();
    // a.rs burned one entry; c.rs burned its only one (pair vanished).
    current.insert(
        (
            "panic-in-lib".to_string(),
            "crates/bench/src/a.rs".to_string(),
        ),
        2,
    );
    let report = baseline::ratchet(&current, &base);
    assert!(report.passes(), "{:?}", report.regressions);
    assert_eq!(report.improvements.len(), 2, "{:?}", report.improvements);
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let mut counts = baseline::Counts::new();
    counts.insert(
        (
            "panic-in-lib".to_string(),
            "crates/bench/src/a.rs".to_string(),
        ),
        7,
    );
    counts.insert(
        ("wallclock".to_string(), "crates/core/src/b.rs".to_string()),
        1,
    );
    let text = baseline::render(&counts);
    assert_eq!(baseline::parse(&text).expect("round trip"), counts);
}

#[test]
fn scan_output_is_deterministic_across_runs() {
    let a = scan_file("crates/serve/src/fixture.rs", UNORDERED_ITER);
    let b = scan_file("crates/serve/src/fixture.rs", UNORDERED_ITER);
    let render =
        |v: &[inferturbo_lint::report::Violation]| inferturbo_lint::report::render_human(v);
    assert_eq!(render(&a), render(&b));
}
