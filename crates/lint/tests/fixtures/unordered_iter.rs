use std::collections::{BTreeMap, HashMap};

struct State {
    shards: HashMap<u64, u32>,
    order: Vec<u32>,
}

fn touch(s: &mut State) -> u64 {
    let mut sum = 0u64;
    let mut local: HashMap<u64, u32> = HashMap::new();
    local.insert(1, 2);
    let ordered: BTreeMap<u64, u32> = BTreeMap::new();
    for (k, v) in &local {
        sum += k + u64::from(*v);
    }
    for k in s.shards.keys() {
        sum += k;
    }
    for v in &s.order {
        sum += u64::from(*v);
    }
    for (k, _) in &ordered {
        sum += k;
    }
    sum
}
