//! Banned patterns inside comments, strings and raw strings are inert.
//! Prose mention of x.unwrap() and panic!("nope") stays prose.

fn clean() -> String {
    let s = "call x.unwrap() or panic!() or Instant::now()";
    let r = r#"SystemTime::now() and std::thread::spawn and env::var("X")"#;
    let nested = r##"outer r#"inner .elapsed()"# still raw"##;
    /* block comment: .expect("no") unreachable!() */
    // line comment: for k in shards.keys() {}
    let lifetime_not_char: &'static str = "x";
    format!("{s}{r}{nested}{lifetime_not_char}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        let shards: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for k in shards.keys() {
            let _ = k;
        }
        let t0 = std::time::Instant::now();
        std::thread::spawn(|| ());
        std::env::var("X").ok();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
        None::<u32>.unwrap();
    }
}
