fn library_path(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a > b {
        panic!("impossible");
    }
    match a {
        0 => unreachable!("zero handled upstream"),
        1 => todo!("one"),
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        v.expect("fine in tests");
        panic!("fine in tests");
    }
}
