fn hidden_input() -> Option<String> {
    let a = std::env::var("INFERTURBO_SECRET").ok();
    let _b = std::env::var_os("PATH");
    a
}
