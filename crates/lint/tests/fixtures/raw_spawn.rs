fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let b = std::thread::Builder::new();
    drop((h, b));
}
