use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos()
}
