use std::process::Command;

fn launch() {
    let minion = Command::new("true");
    let direct = std::process::Command::new("false");
    drop((minion, direct));
}
