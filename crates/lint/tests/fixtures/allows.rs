fn suppressed(x: Option<u32>) -> u32 {
    // itlint::allow(panic-in-lib): fixture — standalone directive covers the next line
    let a = x.unwrap();
    let b = x.expect("trailing"); // itlint::allow(panic-in-lib): fixture — trailing directive covers its own line
    let c = x.unwrap();
    // itlint::allow(panic-in-lib)
    let d = x.unwrap();
    // itlint::allow(no-such-rule): the rule id does not exist
    a + b + c + d
}
