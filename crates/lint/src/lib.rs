//! `itlint` — offline static analysis for the InferTurbo workspace.
//!
//! # Static gates
//!
//! InferTurbo's spine is a pair of contracts no compiler checks:
//!
//! 1. **Determinism** — parallel == serial == batched == spilled ==
//!    recovered, bit-identical at every thread count. A single stray
//!    wall-clock read, unordered `HashMap` iteration, or ad-hoc thread can
//!    silently erode it long before a test catches the drift.
//! 2. **Panic-freedom** — library code surfaces typed
//!    [`Error`](../inferturbo_common/enum.Error.html) values; it never
//!    aborts the process. A serving fleet survives a poisoned request only
//!    if the failure is a value.
//!
//! Both were previously enforced only by after-the-fact tests. `itlint`
//! turns them into a fast, zero-dependency *static* gate that runs before
//! the test suite in `scripts/ci.sh`:
//!
//! ```text
//! cargo run -p inferturbo_lint --release -- --check
//! ```
//!
//! ## How it works
//!
//! A small surface lexer ([`lexer`]) blanks comments, strings, raw strings
//! and char literals (so patterns never match prose or literals), tracks
//! `#[cfg(test)]` / `mod tests` scopes (test code is exempt from every
//! rule), and harvests suppression comments. The rule engine ([`rules`])
//! tokenizes the sanitized text and matches per-rule token patterns over
//! every `src/` file of every workspace crate (dependency shims under
//! `crates/devshims/` stand in for external code and are skipped). Output
//! ([`report`]) is deterministic — sorted by `(file, line, rule)`,
//! byte-identical across runs — in both human-readable and `--json` forms.
//!
//! ## Rule catalogue
//!
//! | id | what it flags | sanctioned scope |
//! |----|---------------|------------------|
//! | `wallclock` | `Instant::now`, `SystemTime`, `.elapsed()` | `crates/bench` owns timing |
//! | `panic-in-lib` | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!` | test code only |
//! | `unordered-iter` | `.iter()`/`.keys()`/`.values()`/`.drain()`/… or `for … in` on a `HashMap`/`HashSet`-typed binding, in `pregel`/`serve`/`cluster`/`common` | sorted drains / `BTreeMap` |
//! | `raw-spawn` | `thread::{spawn,scope,Builder}`, `Command::new`, `process::Command` | `common/src/par.rs` owns threads, `cluster/src/transport/spawn.rs` owns worker processes |
//! | `env-read` | `env::{var,var_os,vars}` | `common/src/par.rs`, `cluster/src/fault.rs`, `cluster/src/transport/env.rs`, `obs/src/arm.rs` |
//! | `malformed-allow` | an `itlint::allow` comment that does not parse | — |
//!
//! ## Suppressing a finding
//!
//! Suppression is explicit and auditable, never configuration-wide:
//!
//! ```text
//! // itlint::allow(panic-in-lib): chunks_exact(8) guarantees 8-byte slices
//! let v = u64::from_le_bytes(c.try_into().unwrap());
//! ```
//!
//! A directive suppresses its rule on the same line (trailing comment) or
//! the immediately following line (standalone comment), and **must** carry a
//! non-empty reason; a typo'd or reason-less directive is itself reported
//! (`malformed-allow`), so suppressions cannot silently rot.
//!
//! ## The ratcheting baseline
//!
//! Pre-existing debt is grandfathered in `lint/baseline.toml`: a count per
//! `(rule, file)` that may only *decrease*. `--check` fails when a pair
//! exceeds its baselined count (or shows up with no entry), accepts
//! decreases with a tightening note, and `--write-baseline` regenerates the
//! file after debt is burned down. New code therefore meets the bar
//! immediately while old debt shrinks PR by PR.
//!
//! ## Adding a rule
//!
//! 1. Add a [`rules::RuleDef`] with a stable id to [`rules::RULES`] and its
//!    token patterns in `rules::match_rules`.
//! 2. Scope it in [`config::rule_applies`] (include/exempt path prefixes).
//! 3. Add a fixture under `crates/lint/tests/fixtures/` plus a case in
//!    `crates/lint/tests/lint_fixtures.rs`.
//! 4. Run `itlint --write-baseline` to grandfather existing hits, and eyeball
//!    the diff — the baseline is the reviewed debt ledger.
//!
//! A second, coarser layer rides on clippy: the workspace `clippy.toml`
//! disallows `std::time::Instant::now` and `std::thread::spawn` via
//! `disallowed-methods` (with `crates/bench/clippy.toml` overriding for the
//! sanctioned timing owner), so even patterns itlint's lexical view could
//! miss behind a `use` alias are caught at type-resolution depth.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::Path;

/// Scan the workspace rooted at `root`; returns all current violations in
/// canonical order. I/O failures carry the offending path.
pub fn scan_workspace(root: &Path) -> Result<Vec<report::Violation>, String> {
    let files =
        config::scan_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    for (rel, abs) in &files {
        let src =
            std::fs::read_to_string(abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        violations.extend(rules::scan_file(rel, &src));
    }
    report::sort(&mut violations);
    Ok(violations)
}
