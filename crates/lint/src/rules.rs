//! The rule engine: tokenizes the sanitized source (see [`crate::lexer`]) and
//! matches each rule's token patterns, honoring `#[cfg(test)]`/`mod tests`
//! masking and `itlint::allow` suppressions.
//!
//! Every rule has a stable id (the string used in allow directives and
//! `lint/baseline.toml`); see [`RULES`] and the crate-level docs for the
//! catalogue.

use crate::config;
use crate::lexer;
use crate::report::Violation;

/// One registered rule.
pub struct RuleDef {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The rule catalogue. Ids are stable: they appear in allow directives, in
/// `lint/baseline.toml`, and in `--json` output, and must never be renamed
/// without migrating both.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "wallclock",
        summary: "Instant::now / SystemTime / .elapsed() outside crates/bench — wall-clock \
                  reads make runs non-replayable; timing belongs to the bench harness",
    },
    RuleDef {
        id: "panic-in-lib",
        summary: ".unwrap() / .expect() / panic! / unreachable! / todo! in non-test library \
                  code — library paths surface typed Error values, never abort the process",
    },
    RuleDef {
        id: "unordered-iter",
        summary: "iteration over a HashMap/HashSet (FxHashMap/FxHashSet) in pregel/serve/\
                  cluster/common — hash iteration order can leak into results",
    },
    RuleDef {
        id: "raw-spawn",
        summary: "std::thread::{spawn,scope,Builder} or process::Command outside \
                  inferturbo_common::par / inferturbo_cluster::transport::spawn — ad-hoc \
                  threads and subprocesses bypass the global Parallelism budget and the \
                  determinism contract",
    },
    RuleDef {
        id: "env-read",
        summary: "std::env::var outside the sanctioned config/fault-arming modules — \
                  environment reads are hidden inputs that must stay centralized",
    },
    RuleDef {
        id: "malformed-allow",
        summary: "an itlint::allow comment that does not parse — a typo here would silently \
                  re-enable the violation it meant to document",
    },
];

/// Look up a rule id; `None` for unknown ids (used to validate allows).
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A token of the sanitized source: an identifier/number word, `::`, or a
/// single punctuation byte. Whitespace is dropped; `line` is 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tok<'a> {
    text: &'a str,
    line: u32,
}

fn tokenize(sanitized: &str) -> Vec<Tok<'_>> {
    let b = sanitized.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                text: &sanitized[start..i],
                line,
            });
        } else if c == b':' && i + 1 < b.len() && b[i + 1] == b':' {
            toks.push(Tok {
                text: &sanitized[i..i + 2],
                line,
            });
            i += 2;
        } else if c.is_ascii() {
            toks.push(Tok {
                text: &sanitized[i..i + 1],
                line,
            });
            i += 1;
        } else {
            // Multi-byte UTF-8 (only ever in identifiers we don't match).
            let mut j = i + 1;
            while j < b.len() && (b[j] & 0xC0) == 0x80 {
                j += 1;
            }
            i = j;
        }
    }
    toks
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];
const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];
const THREAD_PRIMS: &[&str] = &["spawn", "scope", "Builder"];

/// Collect identifiers that are (heuristically) bound to a hash map/set in
/// this file: `name: FxHashMap<…>` type ascriptions (fields, params, lets)
/// and `let name = FxHashMap::default()`-style initializers. Purely lexical —
/// no type inference — so it is scoped per file and backed by the allow
/// mechanism for the rare false positive.
fn collect_map_idents<'a>(toks: &[Tok<'a>]) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    let mut record = |name: &'a str| {
        if !out.contains(&name) {
            out.push(name);
        }
    };
    let is_ident = |t: &Tok| -> bool {
        t.text
            .as_bytes()
            .first()
            .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
    };
    for i in 0..toks.len() {
        // `name : …MapType…` — scan the ascribed type to a same-depth
        // delimiter looking for a map type name.
        if toks[i].text == ":" && i > 0 && is_ident(&toks[i - 1]) {
            let mut depth = 0i32;
            for t in toks.iter().skip(i + 1).take(24) {
                match t.text {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "," | ";" | "=" | ")" | "{" | "}" if depth <= 0 => break,
                    x if MAP_TYPES.contains(&x) => {
                        record(toks[i - 1].text);
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] name … = … MapType …;`
        if toks[i].text == "let" {
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "mut" {
                j += 1;
            }
            if j < toks.len() && is_ident(&toks[j]) {
                let name = toks[j].text;
                for t in toks.iter().skip(j + 1).take(32) {
                    if t.text == ";" {
                        break;
                    }
                    if MAP_TYPES.contains(&t.text) {
                        record(name);
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Raw (pre-mask, pre-allow) matches for every path-applicable rule.
fn match_rules(rel_path: &str, toks: &[Tok<'_>]) -> Vec<(&'static str, u32)> {
    let mut hits: Vec<(&'static str, u32)> = Vec::new();
    let map_idents = if config::rule_applies("unordered-iter", rel_path) {
        collect_map_idents(toks)
    } else {
        Vec::new()
    };
    let t = |i: usize| -> &str { toks.get(i).map_or("", |t| t.text) };

    for i in 0..toks.len() {
        let line = toks[i].line;
        // panic-in-lib: `.unwrap(` / `.expect(` and the abort macros.
        if config::rule_applies("panic-in-lib", rel_path) {
            if t(i) == "." && PANIC_METHODS.contains(&t(i + 1)) && t(i + 2) == "(" {
                hits.push(("panic-in-lib", toks[i + 1].line));
            }
            if PANIC_MACROS.contains(&t(i)) && t(i + 1) == "!" {
                hits.push(("panic-in-lib", line));
            }
        }
        // wallclock: Instant::now, SystemTime, .elapsed(.
        if config::rule_applies("wallclock", rel_path) {
            if t(i) == "Instant" && t(i + 1) == "::" && t(i + 2) == "now" {
                hits.push(("wallclock", line));
            }
            if t(i) == "SystemTime" {
                hits.push(("wallclock", line));
            }
            if t(i) == "." && t(i + 1) == "elapsed" && t(i + 2) == "(" {
                hits.push(("wallclock", toks[i + 1].line));
            }
        }
        // raw-spawn: thread::spawn / thread::scope / thread::Builder, plus
        // process spawning — `Command::new` and the `process::Command`
        // path form (which also catches `use std::process::Command`, a
        // deliberate tripwire: importing the type outside the sanctioned
        // module is already a design smell worth an explicit allow).
        if config::rule_applies("raw-spawn", rel_path)
            && ((t(i) == "thread" && t(i + 1) == "::" && THREAD_PRIMS.contains(&t(i + 2)))
                || (t(i) == "Command" && t(i + 1) == "::" && t(i + 2) == "new")
                || (t(i) == "process" && t(i + 1) == "::" && t(i + 2) == "Command"))
        {
            hits.push(("raw-spawn", line));
        }
        // env-read: env::var / var_os / vars.
        if config::rule_applies("env-read", rel_path)
            && t(i) == "env"
            && t(i + 1) == "::"
            && ENV_READS.contains(&t(i + 2))
        {
            hits.push(("env-read", line));
        }
        // unordered-iter: `<map>.keys()` … and `for … in [&]map {`.
        if !map_idents.is_empty() {
            if t(i) == "."
                && ITER_METHODS.contains(&t(i + 1))
                && t(i + 2) == "("
                && i > 0
                && map_idents.contains(&t(i - 1))
            {
                hits.push(("unordered-iter", toks[i + 1].line));
            }
            if t(i) == "for" {
                // Find the `in` of this `for` (skip the pattern, which may
                // contain parens/commas), then look at the iterated expr.
                let mut depth = 0i32;
                let mut j = i + 1;
                let limit = (i + 16).min(toks.len());
                while j < limit {
                    match t(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < limit && t(j) == "in" {
                    let mut k = j + 1;
                    while t(k) == "&" || t(k) == "mut" {
                        k += 1;
                    }
                    if t(k) == "self" && t(k + 1) == "." {
                        k += 2;
                    }
                    // Flag `for x in map {` — a trailing `.method()` is
                    // handled (or exonerated) by the method patterns above.
                    if map_idents.contains(&t(k)) && t(k + 1) == "{" {
                        hits.push(("unordered-iter", line));
                    }
                }
            }
        }
    }
    hits
}

/// Scan one file: returns this file's violations, already masked, allowed,
/// deduplicated and ordered by (line, rule).
pub fn scan_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.sanitized);
    let toks = tokenize(&lexed.sanitized);
    let lines: Vec<&str> = src.split('\n').collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().chars().take(100).collect())
            .unwrap_or_default()
    };

    let mut hits = match_rules(rel_path, &toks);

    // Drop matches inside test scopes.
    hits.retain(|&(_, line)| !mask.get(line as usize).copied().unwrap_or(false));

    // Apply allow directives: a trailing directive suppresses matching-rule
    // hits on its own line; a standalone comment line suppresses the line
    // below it. Unknown rule ids in a directive are themselves malformed.
    let mut malformed = lexed.malformed_allows;
    for a in &lexed.allows {
        if !rule_exists(&a.rule) {
            malformed.push(lexer::MalformedAllow {
                line: a.line,
                detail: format!("unknown rule id `{}` in itlint::allow", a.rule),
            });
        }
    }
    hits.retain(|&(rule, line)| {
        !lexed
            .allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || (a.standalone && a.line + 1 == line)))
    });

    let mut out: Vec<Violation> = hits
        .into_iter()
        .map(|(rule, line)| Violation {
            rule: rule.to_string(),
            file: rel_path.to_string(),
            line,
            excerpt: excerpt(line),
        })
        .collect();
    for m in malformed {
        out.push(Violation {
            rule: "malformed-allow".to_string(),
            file: rel_path.to_string(),
            line: m.line,
            excerpt: m.detail,
        });
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<(String, u32)> {
        scan_file(path, src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn panic_patterns_match_and_unwrap_or_does_not() {
        let src = "fn f() {\n    x.unwrap();\n    y.unwrap_or(0);\n    z.expect_err(\"e\");\n    panic!(\"boom\");\n}\n";
        let got = rules_of("crates/core/src/x.rs", src);
        assert_eq!(
            got,
            vec![
                ("panic-in-lib".to_string(), 2),
                ("panic-in-lib".to_string(), 5)
            ]
        );
    }

    #[test]
    fn wallclock_is_scoped_out_of_bench() {
        let src = "fn f() {\n    let t = Instant::now();\n    t.elapsed();\n}\n";
        assert_eq!(rules_of("crates/bench/src/x.rs", src), vec![]);
        let got = rules_of("crates/pregel/src/x.rs", src);
        assert_eq!(
            got,
            vec![("wallclock".to_string(), 2), ("wallclock".to_string(), 3)]
        );
    }

    #[test]
    fn unordered_iter_flags_map_idents_only() {
        let src = "struct S { q: FxHashMap<u64, u32>, v: Vec<u32> }\n\
                   fn f(s: &mut S) {\n\
                       for k in s.q.keys() { use_it(k); }\n\
                       s.v.iter().for_each(drop);\n\
                       let mut local = FxHashMap::default();\n\
                       local.drain();\n\
                   }\n";
        let got = rules_of("crates/serve/src/x.rs", src);
        assert_eq!(
            got,
            vec![
                ("unordered-iter".to_string(), 3),
                ("unordered-iter".to_string(), 6)
            ]
        );
        // Same file outside the scoped crates: rule does not apply.
        assert_eq!(rules_of("crates/tensor/src/x.rs", src), vec![]);
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let src = "fn f(m: FxHashSet<u64>) {\n    for x in &m {\n        touch(x);\n    }\n}\n";
        assert_eq!(
            rules_of("crates/common/src/x.rs", src),
            vec![("unordered-iter".to_string(), 2)]
        );
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "fn f() {\n\
                   // itlint::allow(panic-in-lib): provably infallible here\n\
                   x.unwrap();\n\
                   y.unwrap(); // itlint::allow(panic-in-lib): also fine\n\
                   z.unwrap();\n\
                   }\n";
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![("panic-in-lib".to_string(), 5)]
        );
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let src = "// itlint::allow(no-such-rule): whatever\nfn f() {}\n";
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![("malformed-allow".to_string(), 1)]
        );
    }

    #[test]
    fn cfg_test_scope_is_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(\"t\"); }\n}\n";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn strings_and_comments_do_not_false_positive() {
        let src = "fn f() {\n\
                   let s = \"call x.unwrap() or panic!()\";\n\
                   let r = r#\"Instant::now() env::var(\"X\")\"#;\n\
                   // thread::spawn in prose\n\
                   /* SystemTime::now() */\n\
                   }\n";
        assert_eq!(rules_of("crates/pregel/src/x.rs", src), vec![]);
    }

    #[test]
    fn spawn_and_env_sanctioned_files_are_exempt() {
        let src = "fn f() { std::thread::spawn(|| {}); std::env::var(\"X\").ok(); }\n";
        let got = rules_of("crates/serve/src/x.rs", src);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(rules_of("crates/common/src/par.rs", src).len(), 0);
    }

    #[test]
    fn process_spawns_are_raw_spawn_outside_the_transport_module() {
        let src = "use std::process::Command;\n\
                   fn f() {\n\
                       let c = Command::new(\"true\");\n\
                       drop(c);\n\
                   }\n";
        assert_eq!(
            rules_of("crates/serve/src/x.rs", src),
            vec![("raw-spawn".to_string(), 1), ("raw-spawn".to_string(), 3)]
        );
        // The sanctioned worker-spawn module is exempt.
        assert_eq!(
            rules_of("crates/cluster/src/transport/spawn.rs", src),
            vec![]
        );
    }

    #[test]
    fn transport_env_module_is_exempt_but_neighbours_are_not() {
        let src = "fn f() { std::env::var(\"INFERTURBO_TRANSPORT\").ok(); }\n";
        assert_eq!(rules_of("crates/cluster/src/transport/env.rs", src), vec![]);
        assert_eq!(
            rules_of("crates/cluster/src/transport/frame.rs", src),
            vec![("env-read".to_string(), 1)]
        );
    }
}
