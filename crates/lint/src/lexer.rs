//! A minimal Rust *surface* lexer: just enough to blank out the regions of a
//! source file where rule patterns must never match (comments, string/char
//! literals, raw strings), while preserving byte offsets and line numbers, and
//! to harvest `// itlint::allow(rule): reason` suppression directives from the
//! comments it skips.
//!
//! The sanitized text has exactly the same length and line structure as the
//! input: every skipped byte is replaced by a space (newlines are kept), so a
//! byte offset in the sanitized view maps 1:1 to the original source. Rules
//! match against the sanitized view and report lines from it; excerpts are
//! taken from the original.

/// One `// itlint::allow(rule): reason` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment sits on. A trailing directive suppresses
    /// matches of `rule` on its own line; a standalone comment line
    /// suppresses the line below it.
    pub line: u32,
    /// True when nothing but whitespace precedes the `//` on its line.
    pub standalone: bool,
    pub rule: String,
    pub reason: String,
}

/// A suppression comment that *looks* like a directive but does not parse
/// (unknown shape, missing reason). Surfaced as a violation of the
/// `malformed-allow` meta-rule so typos never silently un-suppress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAllow {
    pub line: u32,
    pub detail: String,
}

/// Output of [`lex`].
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Input with comments and string/char literal contents blanked to
    /// spaces. Same byte length and newline positions as the input.
    pub sanitized: String,
    pub allows: Vec<AllowDirective>,
    pub malformed_allows: Vec<MalformedAllow>,
}

/// Blank out comments and literals, collecting allow directives on the way.
pub fn lex(src: &str) -> LexOutput {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    // Push `n` bytes of blank, preserving newlines (and bumping `line`).
    fn blank(out: &mut Vec<u8>, b: &[u8], from: usize, to: usize, line: &mut u32) {
        for &c in &b[from..to] {
            if c == b'\n' {
                out.push(b'\n');
                *line += 1;
            } else {
                out.push(b' ');
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = memchr_newline(b, i);
            parse_allow_comment(src, i, end, line, &mut allows, &mut malformed);
            blank(&mut out, b, i, end, &mut line);
            i = end;
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, b, i, j, &mut line);
            i = j;
            continue;
        }
        // Raw / byte / raw-byte string literals: r"", r#""#, b"", br#""#.
        if let Some(end) = raw_string_end(b, i) {
            blank(&mut out, b, i, end, &mut line);
            i = end;
            continue;
        }
        // Plain string literal (and byte string b"...").
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_is_ident(b, i)) {
            let start = if c == b'"' { i } else { i + 1 };
            let mut j = start + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            blank(&mut out, b, i, j.min(b.len()), &mut line);
            i = j.min(b.len());
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` in
        // `&'a str` is not. A literal either escapes or closes within a
        // couple of bytes.
        if c == b'\'' && !prev_is_ident(b, i) {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                let j = (j + 1).min(b.len());
                blank(&mut out, b, i, j, &mut line);
                i = j;
                continue;
            }
            // `'c'` with any single non-quote char (multi-byte UTF-8 chars
            // close later; scan a short window for the quote).
            let mut j = i + 1;
            let window = (i + 6).min(b.len());
            while j < window && b[j] != b'\'' && b[j] != b'\n' {
                j += 1;
            }
            if j < window && b[j] == b'\'' && j > i + 1 {
                blank(&mut out, b, i, j + 1, &mut line);
                i = j + 1;
                continue;
            }
            // Lifetime: fall through, emit verbatim.
        }
        if c == b'\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }

    LexOutput {
        // Only ASCII bytes were substituted, and always space-for-byte inside
        // literals/comments, so the result is valid UTF-8 iff the input was;
        // scanned files are rustc-accepted sources, hence valid UTF-8.
        sanitized: String::from_utf8_lossy(&out).into_owned(),
        allows,
        malformed_allows: malformed,
    }
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    let mut j = from;
    while j < b.len() && b[j] != b'\n' {
        j += 1;
    }
    j
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Detect `r"..."`, `r#"..."#`, `br##"..."##` starting at `i`; return the
/// byte offset one past the closing delimiter.
fn raw_string_end(b: &[u8], i: usize) -> Option<usize> {
    if prev_is_ident(b, i) {
        return None;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(b.len())
}

/// Parse a line comment as a potential allow directive.
fn parse_allow_comment(
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    allows: &mut Vec<AllowDirective>,
    malformed: &mut Vec<MalformedAllow>,
) {
    let text = src[start..end].trim_start_matches('/').trim();
    let Some(rest) = text.strip_prefix("itlint::allow") else {
        return;
    };
    let standalone = src[..start]
        .rfind('\n')
        .map_or(&src[..start], |nl| &src[nl + 1..start])
        .trim()
        .is_empty();
    let rest = rest.trim_start();
    let parsed = (|| {
        let rest = rest.strip_prefix('(')?;
        let close = rest.find(')')?;
        let rule = rest[..close].trim();
        if rule.is_empty() || !rule.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'-') {
            return None;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':')?.trim();
        if reason.is_empty() {
            return None;
        }
        Some(AllowDirective {
            line,
            standalone,
            rule: rule.to_string(),
            reason: reason.to_string(),
        })
    })();
    match parsed {
        Some(a) => allows.push(a),
        None => malformed.push(MalformedAllow {
            line,
            detail: format!(
                "expected `itlint::allow(rule-id): reason`, got `{}`",
                text.chars().take(80).collect::<String>()
            ),
        }),
    }
}

/// Per-line mask: `true` means the line is inside test-only code — a block
/// introduced by a `#[cfg(test)]` attribute (on a `mod`, `fn`, `impl`, …) or
/// by `mod tests { … }`. Violations on masked lines are skipped by every rule
/// except the meta-rules.
///
/// Works on the *sanitized* text (attribute strings are already blanked, so
/// `#[cfg(feature = "integration-test")]` cannot false-positive).
pub fn test_mask(sanitized: &str) -> Vec<bool> {
    let line_count = sanitized.split('\n').count();
    let mut mask = vec![false; line_count + 2];
    let b = sanitized.as_bytes();
    let mut i = 0;
    let mut line: usize = 1;
    let mut depth: i32 = 0;
    // Braces depth at which a test scope was entered; None = not in one.
    let mut skip_entered_at: Option<i32> = None;
    // A `#[cfg(test)]`-ish attribute (or `mod tests`) was seen and the next
    // `{` at the current depth opens its body. Cleared by `;` (attribute on a
    // `use`/field/extern item has no body).
    let mut pending = false;
    let mut pending_depth: i32 = 0;

    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                if skip_entered_at.is_some() && line < mask.len() {
                    mask[line] = true;
                }
                i += 1;
            }
            b'#' if i + 1 < b.len() && b[i + 1] == b'[' => {
                // Attribute: find the matching `]` (brackets can nest).
                let mut j = i + 2;
                let mut bd = 1;
                while j < b.len() && bd > 0 {
                    match b[j] {
                        b'[' => bd += 1,
                        b']' => bd -= 1,
                        b'\n' => line += 1,
                        _ => {}
                    }
                    j += 1;
                }
                let attr = &sanitized[i..j];
                // `#[cfg(test)]`, `#[cfg(all(test, …))]` — but NOT
                // `#[cfg(not(test))]`, which marks production-only code.
                if attr.contains("cfg")
                    && contains_word(attr, "test")
                    && !contains_word(attr, "not")
                {
                    pending = true;
                    pending_depth = depth;
                }
                i = j;
            }
            b'm' if is_word_at(b, i, b"mod") => {
                // `mod tests` / `mod test` conventionally scopes unit tests
                // even without the cfg attribute.
                let mut j = i + 3;
                while j < b.len() && (b[j] == b' ' || b[j] == b'\t') {
                    j += 1;
                }
                if is_word_at(b, j, b"tests") || is_word_at(b, j, b"test") {
                    pending = true;
                    pending_depth = depth;
                }
                i += 3;
            }
            b'{' => {
                depth += 1;
                if pending && skip_entered_at.is_none() && pending_depth == depth - 1 {
                    skip_entered_at = Some(depth);
                    pending = false;
                    if line < mask.len() {
                        mask[line] = true;
                    }
                }
                i += 1;
            }
            b'}' => {
                if skip_entered_at == Some(depth) {
                    skip_entered_at = None;
                }
                depth -= 1;
                i += 1;
            }
            b';' => {
                if pending && pending_depth == depth {
                    pending = false;
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    mask
}

fn contains_word(hay: &str, word: &str) -> bool {
    let b = hay.as_bytes();
    let w = word.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + w.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

fn is_word_at(b: &[u8], i: usize, word: &[u8]) -> bool {
    if i + word.len() > b.len() || &b[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
    let after = i + word.len();
    let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
    before_ok && after_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let out = lex("let x = 1; // Instant::now()\n/* panic!() */ let y = 2;");
        assert!(!out.sanitized.contains("Instant"));
        assert!(!out.sanitized.contains("panic"));
        assert!(out.sanitized.contains("let y = 2;"));
        assert_eq!(out.sanitized.len(), 54);
    }

    #[test]
    fn blanks_strings_and_raw_strings() {
        let src = r##"let s = "a.unwrap()"; let r = r#"panic!("x")"#; go();"##;
        let out = lex(src);
        assert!(!out.sanitized.contains("unwrap"));
        assert!(!out.sanitized.contains("panic"));
        assert!(out.sanitized.contains("go();"));
        assert_eq!(out.sanitized.len(), src.len());
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let out = lex("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }");
        assert!(out.sanitized.contains("'a>"));
        assert!(!out.sanitized.contains('"'));
    }

    #[test]
    fn parses_allow_directive() {
        let out = lex("x(); // itlint::allow(panic-in-lib): provably infallible\n");
        assert_eq!(
            out.allows,
            vec![AllowDirective {
                line: 1,
                standalone: false,
                rule: "panic-in-lib".into(),
                reason: "provably infallible".into()
            }]
        );
        assert!(out.malformed_allows.is_empty());
    }

    #[test]
    fn malformed_allow_is_reported() {
        for bad in [
            "// itlint::allow(panic-in-lib)",     // missing reason
            "// itlint::allow(panic-in-lib):",    // empty reason
            "// itlint::allow panic-in-lib: why", // missing parens
            "// itlint::allow(bad rule): why",    // bad id chars
        ] {
            let out = lex(bad);
            assert!(out.allows.is_empty(), "{bad}");
            assert_eq!(out.malformed_allows.len(), 1, "{bad}");
        }
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let out = lex(src);
        let mask = test_mask(&out.sanitized);
        assert!(!mask[1]);
        assert!(mask[4], "{mask:?}");
        assert!(!mask[6]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn lib() { real(); }\n";
        let mask = test_mask(&lex(src).sanitized);
        assert!(!mask[3]);
    }

    #[test]
    fn cfg_test_on_fn_masks_only_that_fn() {
        let src = "#[cfg(test)]\nfn helper() {\n    x.unwrap();\n}\nfn lib() {\n    y();\n}\n";
        let mask = test_mask(&lex(src).sanitized);
        assert!(mask[3]);
        assert!(!mask[6]);
    }
}
