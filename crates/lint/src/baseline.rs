//! The ratcheting baseline: `lint/baseline.toml` records, per `(rule, file)`,
//! how many violations were grandfathered in when the gate landed. The
//! ratchet only turns one way — a check run fails if any pair exceeds its
//! baselined count or appears without an entry, and *accepts* decreases, so
//! the debt burns down PR by PR without ever growing back.
//!
//! The file is a deliberately tiny TOML subset (parsed here with zero
//! dependencies): a header comment and a sequence of
//!
//! ```toml
//! [[entry]]
//! rule = "panic-in-lib"
//! file = "crates/bench/src/fig7.rs"
//! count = 4
//! ```

use std::collections::BTreeMap;

use crate::report::Violation;

/// `(rule, file) -> grandfathered count`, ordered for stable rendering.
pub type Counts = BTreeMap<(String, String), u64>;

/// Aggregate a violation list into baseline-shaped counts.
pub fn counts_of(violations: &[Violation]) -> Counts {
    let mut out = Counts::new();
    for v in violations {
        *out.entry((v.rule.clone(), v.file.clone())).or_insert(0) += 1;
    }
    out
}

/// Render counts as the committed baseline file.
pub fn render(counts: &Counts) -> String {
    let mut s = String::from(
        "# itlint ratcheting baseline — grandfathered violations per (rule, file).\n\
         # Counts may only DECREASE: `itlint --check` fails if a pair exceeds its\n\
         # entry (or appears without one) and prints a note when an entry can be\n\
         # tightened. Regenerate with `itlint --write-baseline` after burning debt.\n",
    );
    for ((rule, file), count) in counts {
        s.push_str(&format!(
            "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
        ));
    }
    s
}

/// Parse the committed baseline. Errors carry the offending line number.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    let mut cur: Option<(Option<String>, Option<String>, Option<u64>)> = None;
    let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<u64>)>,
                     line_no: usize|
     -> Result<(), String> {
        if let Some((rule, file, count)) = cur.take() {
            match (rule, file, count) {
                (Some(r), Some(f), Some(c)) => {
                    if counts.insert((r.clone(), f.clone()), c).is_some() {
                        return Err(format!(
                            "baseline line {line_no}: duplicate entry for ({r}, {f})"
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "baseline line {line_no}: [[entry]] missing rule/file/count"
                    ))
                }
            }
        }
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            flush(&mut cur, line_no)?;
            cur = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {line_no}: expected `key = value`"));
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(entry) = cur.as_mut() else {
            return Err(format!(
                "baseline line {line_no}: `{key}` outside an [[entry]] table"
            ));
        };
        match key {
            "rule" => entry.0 = Some(unquote(value, line_no)?),
            "file" => entry.1 = Some(unquote(value, line_no)?),
            "count" => {
                entry.2 = Some(value.parse::<u64>().map_err(|_| {
                    format!("baseline line {line_no}: count is not an integer: `{value}`")
                })?)
            }
            other => {
                return Err(format!("baseline line {line_no}: unknown key `{other}`"));
            }
        }
    }
    flush(&mut cur, text.lines().count())?;
    Ok(counts)
}

fn unquote(v: &str, line_no: usize) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("baseline line {line_no}: expected a quoted string, got `{v}`"))
}

/// One `(rule, file)` whose current count differs from its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub rule: String,
    pub file: String,
    pub current: u64,
    pub baselined: u64,
}

/// Result of ratcheting current counts against the committed baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Above baseline (or not baselined at all) — these fail the check.
    pub regressions: Vec<Delta>,
    /// Below baseline — the check passes, with a tightening note.
    pub improvements: Vec<Delta>,
}

impl RatchetReport {
    /// The check passes iff nothing regressed; improvements never fail it.
    pub fn passes(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `current` violation counts against `baseline`.
pub fn ratchet(current: &Counts, baseline: &Counts) -> RatchetReport {
    let mut report = RatchetReport::default();
    for ((rule, file), &cur) in current {
        let base = baseline
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if cur > base {
            report.regressions.push(Delta {
                rule: rule.clone(),
                file: file.clone(),
                current: cur,
                baselined: base,
            });
        } else if cur < base {
            report.improvements.push(Delta {
                rule: rule.clone(),
                file: file.clone(),
                current: cur,
                baselined: base,
            });
        }
    }
    // Entries whose violations vanished entirely also tighten the ratchet.
    for ((rule, file), &base) in baseline {
        if base > 0 && !current.contains_key(&(rule.clone(), file.clone())) {
            report.improvements.push(Delta {
                rule: rule.clone(),
                file: file.clone(),
                current: 0,
                baselined: base,
            });
        }
    }
    report
        .improvements
        .sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
    report
        .regressions
        .sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &str, file: &str) -> Violation {
        Violation {
            rule: rule.into(),
            file: file.into(),
            line: 1,
            excerpt: String::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let counts = counts_of(&[
            v("panic-in-lib", "crates/a/src/x.rs"),
            v("panic-in-lib", "crates/a/src/x.rs"),
            v("wallclock", "crates/b/src/y.rs"),
        ]);
        let parsed = parse(&render(&counts)).expect("round trip");
        assert_eq!(parsed, counts);
    }

    #[test]
    fn ratchet_rejects_increases_and_accepts_decreases() {
        let mut baseline = Counts::new();
        baseline.insert(("panic-in-lib".into(), "a.rs".into()), 2);
        baseline.insert(("panic-in-lib".into(), "b.rs".into()), 3);

        // Increase in a.rs: regression. Decrease in b.rs: improvement.
        let current = counts_of(&[
            v("panic-in-lib", "a.rs"),
            v("panic-in-lib", "a.rs"),
            v("panic-in-lib", "a.rs"),
            v("panic-in-lib", "b.rs"),
        ]);
        let rep = ratchet(&current, &baseline);
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].file, "a.rs");
        assert_eq!(
            (rep.regressions[0].current, rep.regressions[0].baselined),
            (3, 2)
        );
        assert_eq!(rep.improvements.len(), 1);
        assert_eq!(
            (rep.improvements[0].current, rep.improvements[0].baselined),
            (1, 3)
        );
    }

    #[test]
    fn unbaselined_violation_is_a_regression() {
        let current = counts_of(&[v("env-read", "new.rs")]);
        let rep = ratchet(&current, &Counts::new());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].baselined, 0);
    }

    #[test]
    fn vanished_entry_is_an_improvement() {
        let mut baseline = Counts::new();
        baseline.insert(("panic-in-lib".into(), "gone.rs".into()), 5);
        let rep = ratchet(&Counts::new(), &baseline);
        assert!(rep.regressions.is_empty());
        assert_eq!(rep.improvements.len(), 1);
        assert_eq!(rep.improvements[0].current, 0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("count = 1").is_err());
        assert!(parse("[[entry]]\nrule = \"r\"\ncount = 1").is_err());
        assert!(parse("[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = x").is_err());
        assert!(parse("[[entry]]\nrule = r\nfile = \"f\"\ncount = 1").is_err());
    }
}
