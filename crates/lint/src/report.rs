//! Violation type and deterministic rendering (human-readable and `--json`).
//!
//! Output ordering is fully specified — violations sort by
//! `(file, line, rule)` and all aggregate maps are `BTreeMap`s — so repeated
//! runs over an unchanged tree produce byte-identical bytes on stdout, a
//! property the CI gate relies on (and the fixture suite pins).

use crate::baseline::RatchetReport;

/// One rule match at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line (or diagnostic detail for meta-rules).
    pub excerpt: String,
}

/// Canonical order for every report: by file, then line, then rule.
pub fn sort(violations: &mut [Violation]) {
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
}

/// Human-readable listing: one `path:line: [rule] excerpt` per violation,
/// then per-rule totals.
pub fn render_human(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.excerpt
        ));
    }
    let mut per_rule: std::collections::BTreeMap<&str, usize> = Default::default();
    for v in violations {
        *per_rule.entry(&v.rule).or_insert(0) += 1;
    }
    if violations.is_empty() {
        s.push_str("itlint: no violations\n");
    } else {
        s.push_str(&format!("\nitlint: {} violation(s)", violations.len()));
        let detail: Vec<String> = per_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        s.push_str(&format!(" ({})\n", detail.join(", ")));
    }
    s
}

/// JSON listing: a single array of objects, stable field order, sorted as
/// the human listing. Hand-rolled (zero-dependency) with full string
/// escaping.
pub fn render_json(violations: &[Violation]) -> String {
    let mut s = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}}}",
            json_str(&v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.excerpt)
        ));
    }
    if !violations.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Render the result of a `--check` run against the ratchet.
pub fn render_check(report: &RatchetReport, above_baseline: &[Violation]) -> String {
    let mut s = String::new();
    for v in above_baseline {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.excerpt
        ));
    }
    for d in &report.regressions {
        s.push_str(&format!(
            "RATCHET: {} [{}] has {} violation(s), baseline allows {}\n",
            d.file, d.rule, d.current, d.baselined
        ));
    }
    for d in &report.improvements {
        s.push_str(&format!(
            "note: {} [{}] improved to {} (baseline {}) — run `itlint --write-baseline` to ratchet down\n",
            d.file, d.rule, d.current, d.baselined
        ));
    }
    if report.regressions.is_empty() {
        s.push_str("itlint --check: OK (no violations above baseline)\n");
    } else {
        s.push_str(&format!(
            "itlint --check: FAILED ({} (rule, file) pair(s) above baseline)\n",
            report.regressions.len()
        ));
    }
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &str, file: &str, line: u32, excerpt: &str) -> Violation {
        Violation {
            rule: rule.into(),
            file: file.into(),
            line,
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn sort_is_by_file_line_rule() {
        let mut vs = vec![
            v("b-rule", "b.rs", 1, ""),
            v("a-rule", "a.rs", 9, ""),
            v("b-rule", "a.rs", 2, ""),
            v("a-rule", "a.rs", 2, ""),
        ];
        sort(&mut vs);
        let order: Vec<(String, u32, String)> =
            vs.into_iter().map(|v| (v.file, v.line, v.rule)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 2, "a-rule".into()),
                ("a.rs".into(), 2, "b-rule".into()),
                ("a.rs".into(), 9, "a-rule".into()),
                ("b.rs".into(), 1, "b-rule".into()),
            ]
        );
    }

    #[test]
    fn json_escapes_special_chars() {
        let out = render_json(&[v("r", "f.rs", 1, "say \"hi\"\\\t")]);
        assert!(out.contains(r#""excerpt": "say \"hi\"\\\t""#));
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
