//! Workspace scanning scope and per-rule path scoping.
//!
//! All paths are workspace-relative with `/` separators (normalized at
//! discovery time), so scoping decisions — and therefore output — are
//! identical on every platform.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories whose `.rs` files are scanned: the umbrella crate's `src/`
/// and every workspace member's `src/`. Test dirs, benches and examples are
/// exempt by design (the contracts govern *library* code; tests enforce them
/// dynamically), as are the offline dependency shims, which stand in for
/// external crates.
const SKIP_PREFIXES: &[&str] = &["crates/devshims/"];

/// Sanctioned wall-clock owner: the bench harness measures real time.
const WALLCLOCK_EXEMPT: &[&str] = &["crates/bench/"];

/// Crates where hash-iteration order can leak into results or the wire.
const UNORDERED_SCOPE: &[&str] = &[
    "crates/pregel/",
    "crates/serve/",
    "crates/cluster/",
    "crates/common/",
];

/// The modules allowed to create concurrency: `inferturbo_common::par`
/// owns the fork-join substrate and the global `Parallelism` budget, and
/// `inferturbo_cluster::transport::spawn` owns the worker child processes
/// the process transport pipes shards through (the rule also matches
/// `Command::new` / `process::Command` — an ad-hoc subprocess is a thread
/// the budget cannot see).
const SPAWN_EXEMPT: &[&str] = &[
    "crates/common/src/par.rs",
    "crates/cluster/src/transport/spawn.rs",
];

/// Modules sanctioned to read the environment: the thread-budget resolver
/// (`INFERTURBO_THREADS`), the fault-schedule arming hook
/// (`INFERTURBO_FAULTS`), the trace arming hook (`INFERTURBO_TRACE`) and
/// the transport arming hook (`INFERTURBO_TRANSPORT` /
/// `INFERTURBO_WORKER_BIN`). Anything else uses an inline allow with a
/// reason (e.g. the `INFERTURBO_OVERLOAD` knob in
/// `crates/serve/src/server.rs`).
const ENV_EXEMPT: &[&str] = &[
    "crates/common/src/par.rs",
    "crates/cluster/src/fault.rs",
    "crates/cluster/src/transport/env.rs",
    "crates/obs/src/arm.rs",
];

/// Does `rule` apply to the file at workspace-relative `rel_path`?
pub fn rule_applies(rule: &str, rel_path: &str) -> bool {
    if SKIP_PREFIXES.iter().any(|p| rel_path.starts_with(p)) {
        return false;
    }
    match rule {
        "wallclock" => !WALLCLOCK_EXEMPT.iter().any(|p| rel_path.starts_with(p)),
        "panic-in-lib" => true,
        "unordered-iter" => UNORDERED_SCOPE.iter().any(|p| rel_path.starts_with(p)),
        "raw-spawn" => !SPAWN_EXEMPT.contains(&rel_path),
        "env-read" => !ENV_EXEMPT.contains(&rel_path),
        "malformed-allow" => true,
        _ => false,
    }
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace Cargo.toml found above the current directory",
            ));
        }
    }
}

/// Discover the files to scan, as sorted `(relative, absolute)` pairs.
/// Sorted relative paths make every downstream report byte-identical across
/// runs and platforms.
pub fn scan_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let p = entry?.path().join("src");
            if p.is_dir() {
                roots.push(p);
            }
        }
    }
    let mut out = Vec::new();
    for r in roots {
        collect_rs(&r, &mut out)?;
    }
    let mut pairs: Vec<(String, PathBuf)> = out
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                None
            } else {
                Some((rel, abs))
            }
        })
        .collect();
    pairs.sort();
    pairs.dedup_by(|a, b| a.0 == b.0);
    Ok(pairs)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_the_contract() {
        assert!(!rule_applies("wallclock", "crates/bench/src/scaling.rs"));
        assert!(rule_applies("wallclock", "crates/pregel/src/engine.rs"));
        assert!(rule_applies("panic-in-lib", "crates/bench/src/scaling.rs"));
        assert!(rule_applies("unordered-iter", "crates/serve/src/server.rs"));
        assert!(!rule_applies(
            "unordered-iter",
            "crates/tensor/src/matrix.rs"
        ));
        assert!(!rule_applies("raw-spawn", "crates/common/src/par.rs"));
        assert!(!rule_applies(
            "raw-spawn",
            "crates/cluster/src/transport/spawn.rs"
        ));
        assert!(rule_applies("raw-spawn", "crates/common/src/rows.rs"));
        assert!(rule_applies(
            "raw-spawn",
            "crates/cluster/src/transport/mod.rs"
        ));
        assert!(!rule_applies("env-read", "crates/cluster/src/fault.rs"));
        assert!(!rule_applies(
            "env-read",
            "crates/cluster/src/transport/env.rs"
        ));
        assert!(!rule_applies("env-read", "crates/obs/src/arm.rs"));
        assert!(rule_applies("env-read", "crates/obs/src/sink.rs"));
        assert!(rule_applies(
            "env-read",
            "crates/cluster/src/transport/frame.rs"
        ));
        assert!(rule_applies("env-read", "crates/serve/src/server.rs"));
        assert!(!rule_applies(
            "panic-in-lib",
            "crates/devshims/proptest/src/lib.rs"
        ));
        assert!(!rule_applies("no-such-rule", "crates/common/src/lib.rs"));
    }
}
