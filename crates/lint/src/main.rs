//! `itlint` CLI. See the crate docs ("Static gates") for the rule catalogue
//! and the ratchet model.
//!
//! Modes:
//! - default: list every current violation (baselined or not); exit 0.
//! - `--check`: ratchet against `lint/baseline.toml`; exit 1 on any
//!   `(rule, file)` above its baselined count (or unbaselined).
//! - `--write-baseline`: regenerate the baseline from the current tree.
//! - `--json`: machine-readable listing (default mode only).
//! - `--list-rules`: print the rule catalogue.
//! - `--root <dir>`: workspace root (default: walk up from the cwd).
//!
//! Exit codes: 0 ok, 1 check failed, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use inferturbo_lint::{baseline, config, report, rules, scan_workspace};

struct Args {
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    check: bool,
    json: bool,
    write_baseline: bool,
    list_rules: bool,
}

const USAGE: &str = "usage: itlint [--root <dir>] [--baseline <path>] [--check] [--json] [--write-baseline] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline_path: None,
        check: false,
        json: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--baseline" => {
                args.baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a path")?,
                ))
            }
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if args.check && args.write_baseline {
        return Err("--check and --write-baseline are mutually exclusive".to_string());
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<16} {}", r.id, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            config::find_workspace_root(&cwd).map_err(|e| e.to_string())?
        }
    };
    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint").join("baseline.toml"));

    let violations = scan_workspace(&root)?;
    let current = baseline::counts_of(&violations);

    if args.write_baseline {
        let rendered = baseline::render(&current);
        if let Some(dir) = baseline_path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(&baseline_path, &rendered)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "itlint: wrote {} entries ({} violation(s)) to {}",
            current.len(),
            violations.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if args.check {
        let committed = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => baseline::Counts::new(),
            Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
        };
        let ratchet = baseline::ratchet(&current, &committed);
        // Show the actual offending sites for regressed pairs, so the CI
        // failure names lines, not just counts.
        let above: Vec<report::Violation> = violations
            .iter()
            .filter(|v| {
                ratchet
                    .regressions
                    .iter()
                    .any(|d| d.rule == v.rule && d.file == v.file)
            })
            .cloned()
            .collect();
        print!("{}", report::render_check(&ratchet, &above));
        return Ok(if ratchet.regressions.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    if args.json {
        print!("{}", report::render_json(&violations));
    } else {
        print!("{}", report::render_human(&violations));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("itlint: {msg}");
            ExitCode::from(2)
        }
    }
}
