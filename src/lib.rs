//! # inferturbo
//!
//! Umbrella crate for the InferTurbo reproduction: a scalable full-graph GNN
//! inference system in the spirit of *"InferTurbo: A Scalable System for
//! Boosting Full-graph Inference of Graph Neural Network over Huge Graphs"*
//! (ICDE 2023).
//!
//! This crate re-exports the public API of every subsystem so that examples
//! and downstream users need a single dependency:
//!
//! - [`common`] — deterministic RNG, hashing, wire codec;
//! - [`tensor`] — dense kernels, tape autograd, NN layers for training;
//! - [`graph`] — graph storage, partitioning, generators, datasets;
//! - [`cluster`] — the simulated distributed runtime and cost model;
//! - [`batch`] — the MapReduce backend engine;
//! - [`pregel`] — the Pregel backend engine;
//! - [`core`] — the GAS abstraction, GNN models, training and the
//!   full-graph inference drivers (the paper's contribution);
//! - [`serve`] — the batching, admission-controlled serving layer over
//!   inference sessions (plan caching, micro-batching, fleet-wide memory
//!   admission);
//! - [`obs`] — the deterministic flight recorder: structured event
//!   tracing (byte-identical at every thread count and across recovery
//!   replays) and the unified metrics registry behind every report.

pub use inferturbo_batch as batch;
pub use inferturbo_cluster as cluster;
pub use inferturbo_common as common;
pub use inferturbo_core as core;
pub use inferturbo_graph as graph;
pub use inferturbo_obs as obs;
pub use inferturbo_pregel as pregel;
pub use inferturbo_serve as serve;
pub use inferturbo_tensor as tensor;
