//! Session-pipeline contract tests (see `inferturbo_core::session`):
//!
//! 1. **Plan reuse**: one plan, many `.run()` calls, across thread budgets
//!    — every run bit-identical to a fresh one-shot run. Thread budgets
//!    are driven through `Parallelism::with`, the programmatic equivalent
//!    of the `INFERTURBO_THREADS` environment override (the env var is
//!    read once per process, so tests must use the override API).
//! 2. **Wrapper equivalence**: the legacy one-shot drivers are pinned
//!    bit-identical to the session path for every model × strategy
//!    combination of the equivalence suite.
//! 3. **Backend auto-selection**: `Backend::Auto` flips from Pregel to
//!    MapReduce exactly when the memory budget drops below the plan's
//!    resident-state estimate.
//! 4. **Fresh features**: `run_with_features` with the graph's own
//!    features is bit-identical to `run`; with different features it
//!    matches a reference forward over those features.

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::Parallelism;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use inferturbo::graph::Graph;

fn test_graph(skew: DegreeSkew) -> Graph {
    generate(&GenConfig {
        n_nodes: 120,
        n_edges: 700,
        feat_dim: 5,
        classes: 3,
        skew,
        alpha: 1.3,
        homophily: 0.4,
        seed: 77,
        ..GenConfig::default()
    })
}

fn models() -> Vec<(&'static str, GnnModel)> {
    vec![
        (
            "sage-mean",
            GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 1),
        ),
        (
            "sage-max",
            GnnModel::sage(5, 8, 2, 3, false, PoolOp::Max, 2),
        ),
        ("gcn", GnnModel::gcn(5, 8, 2, 3, false, 3)),
        ("gat", GnnModel::gat(5, 8, 2, 2, 3, false, 4)),
    ]
}

fn bits(logits: &[Vec<f32>]) -> Vec<Vec<u32>> {
    logits
        .iter()
        .map(|l| l.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn one_plan_many_runs_bit_identical_across_thread_counts() {
    let g = test_graph(DegreeSkew::Out);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 9);
    let strat = StrategyConfig::all().with_threshold(5);
    for backend in [Backend::Pregel, Backend::MapReduce] {
        let plan = InferenceSession::builder()
            .model(&m)
            .graph(&g)
            .workers(8)
            .strategy(strat)
            .backend(backend)
            .plan()
            .unwrap();
        // Fresh one-shot baseline at the serial budget.
        let want = Parallelism::with(1, || match backend {
            Backend::Pregel => infer_pregel(&m, &g, ClusterSpec::pregel_cluster(8), strat).unwrap(),
            _ => infer_mapreduce(&m, &g, ClusterSpec::mapreduce_cluster(8), strat).unwrap(),
        });
        let want_bits = bits(&want.logits);
        // One plan, repeated runs, different thread budgets each time —
        // including re-running at an already-used budget to exercise the
        // pooled (warm) scratch path.
        for threads in [1usize, 2, 4, 1, 4] {
            let out = Parallelism::with(threads, || plan.run().unwrap());
            assert_eq!(
                bits(&out.logits),
                want_bits,
                "{backend:?} diverged at {threads} threads"
            );
            assert_eq!(
                out.report.total_bytes(),
                want.report.total_bytes(),
                "{backend:?} byte accounting diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn wrappers_pin_bit_identical_to_session_path_for_every_combo() {
    let g = test_graph(DegreeSkew::Out);
    for (name, m) in models() {
        for pg in [false, true] {
            for sn in [false, true] {
                let strat = StrategyConfig::none()
                    .with_partial_gather(pg)
                    .with_broadcast(true)
                    .with_shadow_nodes(sn)
                    .with_threshold(5);
                let spec = ClusterSpec::pregel_cluster(8);
                let wrapper = infer_pregel(&m, &g, spec, strat).unwrap();
                let session = InferenceSession::builder()
                    .model(&m)
                    .graph(&g)
                    .pregel_spec(spec)
                    .strategy(strat)
                    .backend(Backend::Pregel)
                    .plan()
                    .unwrap();
                let a = session.run().unwrap();
                let b = session.run().unwrap();
                assert_eq!(
                    bits(&wrapper.logits),
                    bits(&a.logits),
                    "{name} pregel wrapper vs session (pg={pg} sn={sn})"
                );
                assert_eq!(bits(&a.logits), bits(&b.logits), "{name} rerun");

                let mr_spec = ClusterSpec::mapreduce_cluster(8);
                let wrapper = infer_mapreduce(&m, &g, mr_spec, strat).unwrap();
                let session = InferenceSession::builder()
                    .model(&m)
                    .graph(&g)
                    .mapreduce_spec(mr_spec)
                    .strategy(strat)
                    .backend(Backend::MapReduce)
                    .plan()
                    .unwrap();
                let a = session.run().unwrap();
                let b = session.run().unwrap();
                assert_eq!(
                    bits(&wrapper.logits),
                    bits(&a.logits),
                    "{name} mapreduce wrapper vs session (pg={pg} sn={sn})"
                );
                assert_eq!(bits(&a.logits), bits(&b.logits), "{name} mr rerun");
            }
        }
    }
}

#[test]
fn auto_backend_flips_on_the_memory_budget() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    let probe = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .plan()
        .unwrap();
    let resident = probe.estimate().pregel_peak_worker_bytes;
    assert!(resident > 0);

    let roomy = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .memory_budget(resident)
        .plan()
        .unwrap();
    assert_eq!(roomy.backend(), Backend::Pregel);
    let squeezed = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .memory_budget(resident - 1)
        .plan()
        .unwrap();
    assert_eq!(squeezed.backend(), Backend::MapReduce);
    // Both plans still run and agree on predictions.
    let a = roomy.run().unwrap();
    let b = squeezed.run().unwrap();
    assert_eq!(a.predictions(), b.predictions());
}

#[test]
fn run_with_features_matches_run_and_reference() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    let plan = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .strategy(StrategyConfig::all().with_threshold(8))
        .backend(Backend::Pregel)
        .plan()
        .unwrap();

    // Same features => bit-identical to the plain run.
    let own: Vec<Vec<f32>> = (0..g.n_nodes() as u32)
        .map(|v| g.node_feat(v).to_vec())
        .collect();
    let base = plan.run().unwrap();
    let same = plan.run_with_features(&own).unwrap();
    assert_eq!(bits(&base.logits), bits(&same.logits));

    // Fresh features => matches the reference forward over them.
    let fresh: Vec<Vec<f32>> = own
        .iter()
        .enumerate()
        .map(|(v, f)| f.iter().map(|x| x * 0.5 + v as f32 * 1e-3).collect())
        .collect();
    let out = plan.run_with_features(&fresh).unwrap();
    assert_ne!(bits(&base.logits), bits(&out.logits));
    let reference = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .backend(Backend::Reference)
        .plan()
        .unwrap()
        .run_with_features(&fresh)
        .unwrap();
    for (v, (a, b)) in out.logits.iter().zip(&reference.logits).enumerate() {
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() < 1e-3,
                "node {v}: pregel {x} vs reference {y}"
            );
        }
    }

    // Shape validation.
    assert!(plan.run_with_features(&own[1..]).is_err());
    let mut ragged = own.clone();
    ragged[3].push(0.0);
    assert!(plan.run_with_features(&ragged).is_err());
}
