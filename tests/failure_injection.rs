//! Failure-path integration: OOM boundaries, configuration mismatches,
//! and corrupted signatures must surface as typed errors, never panics —
//! Table IV's "OOM" cell is a *result* in this system.
//!
//! The second half drills *injected* failures end-to-end: a session plan
//! carrying a deterministic [`FaultPlan`] must recover bit-identically
//! under a [`RecoveryPolicy`], and the serving layer must retry,
//! contain, and quarantine failing plans without poisoning healthy work.

use std::sync::Arc;

use inferturbo::cluster::{ClusterSpec, FaultPlan, FaultSite, RecoveryPolicy};
use inferturbo::common::{Error, Parallelism};
use inferturbo::core::baseline::{estimate_full_inference, BaselineConfig};
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::signature;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::{Dataset, Graph};
use inferturbo::serve::{FeatureSnapshot, GnnServer, ScoreRequest, ScoreStatus, ServeConfig};

fn dataset() -> Dataset {
    Dataset::power_law(600, 3600, DegreeSkew::In, 5)
}

fn model(feat: usize) -> GnnModel {
    GnnModel::sage(feat, 16, 2, 2, false, PoolOp::Mean, 1)
}

fn bits(logits: &[Vec<f32>]) -> Vec<Vec<u32>> {
    logits
        .iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn snapshot(g: &Graph, scale: f32) -> FeatureSnapshot {
    Arc::new(
        (0..g.n_nodes() as u32)
            .map(|v| g.node_feat(v).iter().map(|x| x * scale).collect())
            .collect(),
    )
}

#[test]
fn pregel_oom_reports_worker_and_phase() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let spec = ClusterSpec::pregel_cluster(4).with_memory(1 << 10); // 1 KB
    let err = infer_pregel(&m, &d.graph, spec, StrategyConfig::none()).unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
    assert!(err.to_string().contains("superstep"), "{err}");
}

#[test]
fn mapreduce_survives_memory_that_kills_pregel() {
    // The batch backend streams per-key groups, so its peak residency sits
    // far below the state-resident Pregel backend's — the paper's
    // scalability argument for the MR backend. Measure both peaks, then
    // verify behaviour at a cap between them.
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let pregel_ok = infer_pregel(
        &m,
        &d.graph,
        ClusterSpec::pregel_cluster(4),
        StrategyConfig::none(),
    )
    .unwrap();
    let mr_ok = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4),
        StrategyConfig::none(),
    )
    .unwrap();
    let pregel_peak = pregel_ok.report.max_mem_peak();
    let mr_peak = mr_ok.report.max_mem_peak();
    assert!(
        mr_peak * 2 < pregel_peak,
        "streaming reducers should need far less memory: mr {mr_peak} vs pregel {pregel_peak}"
    );
    let cap = (mr_peak + pregel_peak) / 2;
    let pregel = infer_pregel(
        &m,
        &d.graph,
        ClusterSpec::pregel_cluster(4).with_memory(cap),
        StrategyConfig::none(),
    );
    let mr = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4).with_memory(cap),
        StrategyConfig::none(),
    );
    assert!(pregel.is_err() && pregel.unwrap_err().is_oom());
    assert!(mr.is_ok(), "MR should stream through the same cap");
}

#[test]
fn mapreduce_oom_on_truly_tiny_memory() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let err = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4).with_memory(256),
        StrategyConfig::none(),
    )
    .unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
}

#[test]
fn feature_dimension_mismatch_is_config_error() {
    let d = dataset();
    let wrong = model(d.graph.node_feat_dim() + 3);
    for result in [
        infer_pregel(
            &wrong,
            &d.graph,
            ClusterSpec::pregel_cluster(2),
            StrategyConfig::none(),
        ),
        infer_mapreduce(
            &wrong,
            &d.graph,
            ClusterSpec::mapreduce_cluster(2),
            StrategyConfig::none(),
        ),
    ] {
        let err = result.unwrap_err();
        assert!(
            err.to_string().contains("do not match"),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn corrupted_signature_rejected_not_loaded() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let path = std::env::temp_dir().join("inferturbo-corrupt.itsig");
    signature::save(&m, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // flip bytes in the middle of the parameter block
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();
    assert!(signature::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn baseline_oom_flag_tracks_memory_cap() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut cfg = BaselineConfig::traditional(3, Some(10_000));
    cfg.spec = cfg.spec.with_memory(1 << 14);
    assert!(estimate_full_inference(&m, &d.graph, &cfg).oom);
    cfg.spec = cfg.spec.with_memory(1 << 42);
    assert!(!estimate_full_inference(&m, &d.graph, &cfg).oom);
}

#[test]
fn strategies_do_not_mask_oom_errors() {
    // Shadow-nodes duplicates in-edges; with a hostile memory cap the OOM
    // must still be typed, not a panic.
    let d = Dataset::power_law(600, 3600, DegreeSkew::Out, 5);
    let m = model(d.graph.node_feat_dim());
    let spec = ClusterSpec::pregel_cluster(4).with_memory(1 << 10);
    let err =
        infer_pregel(&m, &d.graph, spec, StrategyConfig::all().with_threshold(8)).unwrap_err();
    assert!(err.is_oom());
}

// ---------------------------------------------------------------------------
// Injected faults through the session API
// ---------------------------------------------------------------------------

#[test]
fn session_recovery_is_bit_identical_for_both_planes_at_every_thread_count() {
    // THE recovery contract, end-to-end: a worker lost mid-run and
    // replayed from checkpoint must be observably invisible — logits
    // bit-identical to a fault-free run — on the fused and materialized
    // columnar planes alike, at every thread budget.
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    for fused in [true, false] {
        let strategy = if fused {
            StrategyConfig::all()
        } else {
            StrategyConfig::all().with_partial_gather(false)
        };
        let clean = InferenceSession::builder()
            .model(&m)
            .graph(&d.graph)
            .workers(4)
            .strategy(strategy)
            .backend(Backend::Pregel)
            .plan()
            .unwrap()
            .run()
            .unwrap();
        let want = bits(&clean.logits);
        for threads in [1usize, 2, 4] {
            Parallelism::with(threads, || {
                let plan = InferenceSession::builder()
                    .model(&m)
                    .graph(&d.graph)
                    .workers(4)
                    .strategy(strategy)
                    .backend(Backend::Pregel)
                    .fault_plan(
                        FaultPlan::new().and_fail(FaultSite::WorkerCompute { worker: 1, step: 1 }),
                    )
                    .recovery(RecoveryPolicy::new(1, 3))
                    .plan()
                    .unwrap();
                let out = plan.run().unwrap();
                assert_eq!(
                    bits(&out.logits),
                    want,
                    "fused={fused} threads={threads}: recovered run must be bit-identical"
                );
                assert_eq!(out.report.retries, 1, "fused={fused} threads={threads}");
                assert!(out.report.checkpoints >= 1);
                assert_eq!(out.report.recovered_supersteps, 1);
                // The plan's fault budgets are shared across runs: the
                // event already happened, so a re-run sails through.
                let again = plan.run().unwrap();
                assert_eq!(bits(&again.logits), want);
                assert_eq!(again.report.retries, 0, "budget drained by the first run");
            });
        }
    }
}

#[test]
fn session_retry_exhaustion_surfaces_the_typed_error() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let schedule =
        FaultPlan::new().and_fail_times(FaultSite::WorkerCompute { worker: 0, step: 1 }, 10);
    let plan = InferenceSession::builder()
        .model(&m)
        .graph(&d.graph)
        .workers(4)
        .backend(Backend::Pregel)
        .fault_plan(schedule.clone())
        .recovery(RecoveryPolicy::new(1, 2))
        .plan()
        .unwrap();
    let err = plan.run().unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert!(err.to_string().contains("superstep 1"), "{err}");
    // An explicit schedule with no recovery fails fast — the session
    // controls both knobs, even under a CI-forced INFERTURBO_FAULTS
    // schedule that would otherwise auto-arm recovery.
    let plan = InferenceSession::builder()
        .model(&m)
        .graph(&d.graph)
        .workers(4)
        .backend(Backend::Pregel)
        .fault_plan(schedule)
        .plan()
        .unwrap();
    let err = plan.run().unwrap_err();
    assert!(err.to_string().contains("superstep 1"), "{err}");
}

#[test]
fn session_mapreduce_task_retries_are_idempotent_and_bounded() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let clean = InferenceSession::builder()
        .model(&m)
        .graph(&d.graph)
        .workers(4)
        .backend(Backend::MapReduce)
        .plan()
        .unwrap()
        .run()
        .unwrap();
    // Two injected map-task failures are absorbed by idempotent
    // re-launches; the output does not change by a bit.
    let absorbed = InferenceSession::builder()
        .model(&m)
        .graph(&d.graph)
        .workers(4)
        .backend(Backend::MapReduce)
        .fault_plan(FaultPlan::new().and_fail_times(
            FaultSite::MapTask {
                worker: 0,
                round: 0,
            },
            2,
        ))
        .plan()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(bits(&absorbed.logits), bits(&clean.logits));
    assert_eq!(absorbed.report.retries, 2);
    // Past the per-task attempt bound the job fails with the typed
    // lost-worker error.
    let err = InferenceSession::builder()
        .model(&m)
        .graph(&d.graph)
        .workers(4)
        .backend(Backend::MapReduce)
        .fault_plan(FaultPlan::new().and_fail_times(
            FaultSite::MapTask {
                worker: 0,
                round: 0,
            },
            10,
        ))
        .plan()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert!(err.to_string().contains("map task"), "{err}");
}

// ---------------------------------------------------------------------------
// Injected faults through the serving layer
// ---------------------------------------------------------------------------

#[test]
fn serve_failed_batch_does_not_poison_the_next_batch() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 1,
        max_run_retries: 0,
        quarantine_after: 0,
        fault_plan: Some(
            FaultPlan::new().and_fail(FaultSite::WorkerCompute { worker: 0, step: 1 }),
        ),
        recovery: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &d.graph).unwrap();
    let req = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    let t1 = server.submit(req.clone()).unwrap();
    let r1 = server.take(t1).expect("failed response must be ready");
    match &r1.status {
        ScoreStatus::Failed(err) => assert!(err.to_string().contains("worker"), "{err}"),
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(
        server.take(t1).is_none(),
        "take consumes: a second take of a failed ticket is None"
    );
    // Same plan, next batch: the scheduled event already fired, and the
    // failed run left no residue behind it.
    let t2 = server.submit(req).unwrap();
    assert!(matches!(
        server.take(t2).unwrap().status,
        ScoreStatus::Served(_)
    ));
    assert_eq!(server.stats().failed, 1);
    assert_eq!(server.stats().served, 1);
    assert_eq!(
        server.stats().plans_built,
        1,
        "one plan serves both batches"
    );
    assert_eq!(server.quarantined_plans(), 0);
}

#[test]
fn serve_retry_absorbs_a_transient_failure_bit_identically() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let want = bits(
        &InferenceSession::builder()
            .model(&m)
            .graph(&d.graph)
            .workers(4)
            .backend(Backend::Pregel)
            .plan()
            .unwrap()
            .run()
            .unwrap()
            .logits,
    );
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 1,
        max_run_retries: 1,
        fault_plan: Some(
            FaultPlan::new().and_fail(FaultSite::WorkerCompute { worker: 0, step: 1 }),
        ),
        recovery: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &d.graph).unwrap();
    let t = server
        .submit(
            ScoreRequest::new(1, 1)
                .with_workers(4)
                .with_backend(Backend::Pregel),
        )
        .unwrap();
    let resp = server.take(t).expect("response ready");
    let logits = resp.logits().expect("retry must absorb the failure");
    assert_eq!(bits(logits), want, "the re-run is bit-identical");
    assert_eq!(server.stats().run_retries, 1);
    assert_eq!(server.stats().served, 1);
    assert_eq!(
        server.stats().failed,
        0,
        "the caller never sees the failure"
    );
}

#[test]
fn serve_quarantine_trips_after_threshold_and_fast_rejects() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 1,
        max_run_retries: 0,
        quarantine_after: 2,
        fault_plan: Some(
            FaultPlan::new().and_fail_times(FaultSite::WorkerCompute { worker: 0, step: 1 }, 2),
        ),
        recovery: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &d.graph).unwrap();
    let req = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    for _ in 0..2 {
        let t = server.submit(req.clone()).unwrap();
        assert!(matches!(
            server.take(t).unwrap().status,
            ScoreStatus::Failed(_)
        ));
    }
    assert_eq!(
        server.stats().quarantined,
        1,
        "streak of 2 trips quarantine"
    );
    assert_eq!(server.quarantined_plans(), 1);
    let err = server.submit(req).unwrap_err();
    assert!(err.to_string().contains("quarantined"), "{err}");
    assert_eq!(server.stats().quarantine_rejections, 1);
    assert_eq!(
        server.stats().submitted,
        2,
        "a fast-rejected submit never enqueues"
    );
}

#[test]
fn serve_quarantine_lifts_when_pending_work_succeeds() {
    // Three groups are queued before the failure streak plays out: the
    // first two runs consume the scheduled faults and trip quarantine,
    // the third succeeds and lifts it — the plan serves again.
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 100,
        max_wait: 0,
        max_run_retries: 0,
        quarantine_after: 2,
        fault_plan: Some(
            FaultPlan::new().and_fail_times(FaultSite::WorkerCompute { worker: 0, step: 1 }, 2),
        ),
        recovery: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &d.graph).unwrap();
    let base = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    // Distinct snapshots open distinct groups on one plan (they cannot
    // coalesce), so one drain executes three separate runs in order.
    let t1 = server
        .submit(base.clone().with_snapshot(snapshot(&d.graph, 1.0)))
        .unwrap();
    let t2 = server
        .submit(base.clone().with_snapshot(snapshot(&d.graph, 0.5)))
        .unwrap();
    let t3 = server
        .submit(base.clone().with_snapshot(snapshot(&d.graph, 0.25)))
        .unwrap();
    server.drain();
    assert!(matches!(
        server.take(t1).unwrap().status,
        ScoreStatus::Failed(_)
    ));
    assert!(matches!(
        server.take(t2).unwrap().status,
        ScoreStatus::Failed(_)
    ));
    assert!(matches!(
        server.take(t3).unwrap().status,
        ScoreStatus::Served(_)
    ));
    assert_eq!(
        server.stats().quarantined,
        1,
        "the streak tripped mid-drain"
    );
    assert_eq!(
        server.quarantined_plans(),
        0,
        "the successful third run lifted the quarantine"
    );
    // New submissions flow again.
    let t4 = server.submit(base).unwrap();
    server.drain();
    assert!(matches!(
        server.take(t4).unwrap().status,
        ScoreStatus::Served(_)
    ));
}

#[test]
fn deadline_exceeded_is_never_transient_and_never_retried() {
    // Classification: a missed deadline is a permanent, caller-owned
    // outcome — retrying cannot un-miss it — unlike the lost-worker
    // family the retry loop exists for.
    let miss = Error::DeadlineExceeded { deadline: 3 };
    assert!(!miss.is_transient());
    assert!(Error::WorkerLost {
        worker: 0,
        detail: "compute fault".into()
    }
    .is_transient());

    // End-to-end: an expired request resolves without the engine ever
    // running — no batch, no retry, even with a generous retry budget.
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 8,
        max_wait: 10,
        max_run_retries: 3,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &d.graph).unwrap();
    let t = server
        .submit(
            ScoreRequest::new(1, 1)
                .with_workers(4)
                .with_deadline(0)
                .with_targets(vec![7]),
        )
        .unwrap();
    server.tick();
    let resp = server.take(t).unwrap();
    assert_eq!(resp.status, ScoreStatus::DeadlineExceeded { deadline: 0 });
    assert!(!resp.as_result().unwrap_err().is_transient());
    assert_eq!(server.stats().batches, 0, "the engine never ran");
    assert_eq!(server.stats().run_retries, 0, "nothing to retry");
    assert_eq!(server.stats().overload.deadline_exceeded, 1);
}
