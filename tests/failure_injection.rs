//! Failure-path integration: OOM boundaries, configuration mismatches,
//! and corrupted signatures must surface as typed errors, never panics —
//! Table IV's "OOM" cell is a *result* in this system.

use inferturbo::cluster::ClusterSpec;
use inferturbo::core::baseline::{estimate_full_inference, BaselineConfig};
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::signature;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::Dataset;

fn dataset() -> Dataset {
    Dataset::power_law(600, 3600, DegreeSkew::In, 5)
}

fn model(feat: usize) -> GnnModel {
    GnnModel::sage(feat, 16, 2, 2, false, PoolOp::Mean, 1)
}

#[test]
fn pregel_oom_reports_worker_and_phase() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let spec = ClusterSpec::pregel_cluster(4).with_memory(1 << 10); // 1 KB
    let err = infer_pregel(&m, &d.graph, spec, StrategyConfig::none()).unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
    assert!(err.to_string().contains("superstep"), "{err}");
}

#[test]
fn mapreduce_survives_memory_that_kills_pregel() {
    // The batch backend streams per-key groups, so its peak residency sits
    // far below the state-resident Pregel backend's — the paper's
    // scalability argument for the MR backend. Measure both peaks, then
    // verify behaviour at a cap between them.
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let pregel_ok = infer_pregel(
        &m,
        &d.graph,
        ClusterSpec::pregel_cluster(4),
        StrategyConfig::none(),
    )
    .unwrap();
    let mr_ok = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4),
        StrategyConfig::none(),
    )
    .unwrap();
    let pregel_peak = pregel_ok.report.max_mem_peak();
    let mr_peak = mr_ok.report.max_mem_peak();
    assert!(
        mr_peak * 2 < pregel_peak,
        "streaming reducers should need far less memory: mr {mr_peak} vs pregel {pregel_peak}"
    );
    let cap = (mr_peak + pregel_peak) / 2;
    let pregel = infer_pregel(
        &m,
        &d.graph,
        ClusterSpec::pregel_cluster(4).with_memory(cap),
        StrategyConfig::none(),
    );
    let mr = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4).with_memory(cap),
        StrategyConfig::none(),
    );
    assert!(pregel.is_err() && pregel.unwrap_err().is_oom());
    assert!(mr.is_ok(), "MR should stream through the same cap");
}

#[test]
fn mapreduce_oom_on_truly_tiny_memory() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let err = infer_mapreduce(
        &m,
        &d.graph,
        ClusterSpec::mapreduce_cluster(4).with_memory(256),
        StrategyConfig::none(),
    )
    .unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
}

#[test]
fn feature_dimension_mismatch_is_config_error() {
    let d = dataset();
    let wrong = model(d.graph.node_feat_dim() + 3);
    for result in [
        infer_pregel(
            &wrong,
            &d.graph,
            ClusterSpec::pregel_cluster(2),
            StrategyConfig::none(),
        ),
        infer_mapreduce(
            &wrong,
            &d.graph,
            ClusterSpec::mapreduce_cluster(2),
            StrategyConfig::none(),
        ),
    ] {
        let err = result.unwrap_err();
        assert!(
            err.to_string().contains("do not match"),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn corrupted_signature_rejected_not_loaded() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let path = std::env::temp_dir().join("inferturbo-corrupt.itsig");
    signature::save(&m, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // flip bytes in the middle of the parameter block
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();
    assert!(signature::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn baseline_oom_flag_tracks_memory_cap() {
    let d = dataset();
    let m = model(d.graph.node_feat_dim());
    let mut cfg = BaselineConfig::traditional(3, Some(10_000));
    cfg.spec = cfg.spec.with_memory(1 << 14);
    assert!(estimate_full_inference(&m, &d.graph, &cfg).oom);
    cfg.spec = cfg.spec.with_memory(1 << 42);
    assert!(!estimate_full_inference(&m, &d.graph, &cfg).oom);
}

#[test]
fn strategies_do_not_mask_oom_errors() {
    // Shadow-nodes duplicates in-edges; with a hostile memory cap the OOM
    // must still be typed, not a panic.
    let d = Dataset::power_law(600, 3600, DegreeSkew::Out, 5);
    let m = model(d.graph.node_feat_dim());
    let spec = ClusterSpec::pregel_cluster(4).with_memory(1 << 10);
    let err =
        infer_pregel(&m, &d.graph, spec, StrategyConfig::all().with_threshold(8)).unwrap_err();
    assert!(err.is_oom());
}
