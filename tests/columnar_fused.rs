//! Property tests for the columnar message plane's fused
//! scatter-aggregation (ISSUE 2): across random graphs, feature dims,
//! worker counts, thread counts, and pool operators, the engine-fused path
//! must be **bit-identical** to its two reference semantics:
//!
//! 1. the legacy per-object combiner path (`with_columnar(false)`) — both
//!    fold per (sender, destination) in emission order with copy-on-first,
//!    then merge partials in ascending sender order, so every f32 op runs
//!    in the same sequence;
//! 2. materialize-then-`segment_sum`/`segment_mean`/`segment_max` over the
//!    raw message rows in delivery order — exact whenever the whole fold
//!    happens inside one sender (single worker), and exact for max at any
//!    worker count (max of floats returns one of its inputs, so regrouping
//!    cannot perturb bits).
//!
//! Both properties additionally pin the out-of-core path: a tiny spill
//! budget (16 B) pages every merged accumulator set to disk and back, and
//! the bits must still match — spilling is storage placement, never
//! arithmetic.

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::{Parallelism, SpillPolicy, Xoshiro256};
use inferturbo::core::models::gas_impl::PoolRowAggregator;
use inferturbo::core::models::PoolOp;
use inferturbo::pregel::{
    ActivationPolicy, Combiner, FusedAggregator, MessageLayout, Outbox, PregelConfig, PregelEngine,
    RowsIn, VertexProgram,
};
use inferturbo::tensor::Matrix;
use proptest::prelude::*;

/// Scatter-then-aggregate over one superstep pair: step 0 sends each
/// vertex's feature row along its out-edges; step 1 stores the pooled
/// aggregate. Runs on the fused columnar plane, the materialized columnar
/// plane, or (columnar disabled) the legacy combiner plane — whichever the
/// engine offers.
struct PoolProg {
    dim: usize,
    op: PoolOp,
    agg: PoolRowAggregator,
    comb: VecPool,
}

#[derive(Clone)]
struct PoolState {
    feat: Vec<f32>,
    nbrs: Vec<u64>,
    agg: Vec<f32>,
    count: u32,
}

/// Legacy-plane combiner matching [`PoolRowAggregator`] fold-for-fold.
/// Legacy messages carry `dim` payload lanes plus one count lane (the
/// role `GnnMessage::Partial`'s count plays on the real wire): payload
/// lanes fold through the aggregator, count lanes add.
struct VecPool {
    op: PoolOp,
}

impl Combiner<Vec<f32>> for VecPool {
    fn combine(&self, acc: &mut Vec<f32>, msg: Vec<f32>) -> Option<Vec<f32>> {
        let dim = acc.len() - 1;
        PoolRowAggregator { op: self.op }.accumulate(&mut acc[..dim], &msg[..dim]);
        acc[dim] += msg[dim];
        None
    }
}

impl PoolProg {
    fn fold(&self, acc: &mut Vec<f32>, row: &[f32]) {
        if acc.is_empty() {
            acc.extend_from_slice(row);
        } else {
            self.agg.accumulate(acc, row);
        }
    }

    /// The layer's post-gather step: mean divides by the raw count, and an
    /// empty aggregate becomes a zero row — exactly the conventions of
    /// `segment_mean` / `segment_max` / `segment_sum` for empty segments.
    fn finish(&self, mut acc: Vec<f32>, count: u32) -> Vec<f32> {
        if count == 0 {
            return vec![0.0; self.dim];
        }
        if self.op == PoolOp::Mean {
            let inv = 1.0 / count as f32;
            for x in &mut acc {
                *x *= inv;
            }
        }
        acc
    }
}

impl VertexProgram for PoolProg {
    type State = PoolState;
    type Msg = Vec<f32>;

    fn compute(
        &self,
        step: usize,
        vertex: u64,
        state: &mut PoolState,
        messages: Vec<Vec<f32>>,
        lookup: &dyn Fn(u64) -> Option<Vec<f32>>,
        out: &mut Outbox<Vec<f32>>,
    ) {
        self.compute_columnar(step, vertex, state, RowsIn::None, messages, lookup, out);
    }

    fn compute_columnar(
        &self,
        step: usize,
        _vertex: u64,
        state: &mut PoolState,
        rows: RowsIn<'_>,
        messages: Vec<Vec<f32>>,
        _lookup: &dyn Fn(u64) -> Option<Vec<f32>>,
        out: &mut Outbox<Vec<f32>>,
    ) {
        if step == 0 {
            if out.row_dim().is_some() {
                for &nb in &state.nbrs {
                    out.send_row(nb, &state.feat);
                }
            } else {
                // Legacy wire: payload + a count lane (initially 1 raw
                // message), like `GnnMessage::Partial`.
                for &nb in &state.nbrs {
                    let mut m = state.feat.clone();
                    m.push(1.0);
                    out.send(nb, m);
                }
            }
            return;
        }
        let mut acc: Vec<f32> = Vec::new();
        let mut count = 0u32;
        match rows {
            RowsIn::None => {}
            RowsIn::Rows { dim, data } => {
                for chunk in data.chunks_exact(dim) {
                    self.fold(&mut acc, chunk);
                    count += 1;
                }
            }
            RowsIn::Fused {
                acc: facc,
                count: c,
                ..
            } => {
                if c > 0 {
                    acc = facc.to_vec();
                    count = c;
                }
            }
        }
        for m in messages {
            self.fold(&mut acc, &m[..self.dim]);
            count += m[self.dim] as u32;
        }
        state.agg = self.finish(acc, count);
        state.count = count;
    }

    fn message_layout(&self, step: usize) -> Option<MessageLayout> {
        (step == 0).then_some(MessageLayout { dim: self.dim })
    }

    fn fused_aggregator(&self, step: usize) -> Option<&dyn FusedAggregator> {
        (step == 0).then_some(&self.agg as &dyn FusedAggregator)
    }

    fn combiner(&self, _step: usize) -> Option<&dyn Combiner<Vec<f32>>> {
        // The legacy plane gets the equivalent per-object combiner, so
        // disabling the columnar plane reproduces the pre-columnar engine.
        Some(&self.comb)
    }

    fn state_bytes(&self, _s: &PoolState) -> u64 {
        0
    }
}

struct Case {
    n: usize,
    dim: usize,
    op: PoolOp,
    feats: Vec<Vec<f32>>,
    /// Out-adjacency per vertex, in emission order.
    nbrs: Vec<Vec<u64>>,
}

fn build_case(n: usize, e: usize, dim: usize, op: PoolOp, seed: u64) -> Case {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let feats: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.next_f32() * 8.0 - 4.0).collect())
        .collect();
    let mut nbrs: Vec<Vec<u64>> = vec![Vec::new(); n];
    for _ in 0..e {
        let s = rng.below(n as u64) as usize;
        let d = rng.below(n as u64);
        nbrs[s].push(d);
    }
    Case {
        n,
        dim,
        op,
        feats,
        nbrs,
    }
}

/// Run the program over `case` and return each vertex's finished
/// aggregate as bit patterns (plus the raw-message count). `spill_budget`
/// puts the columnar inboxes under an out-of-core byte budget.
fn run_case(
    case: &Case,
    workers: usize,
    columnar: bool,
    threads: usize,
    spill_budget: Option<u64>,
) -> Vec<(Vec<u32>, u32)> {
    Parallelism::with(threads, || {
        let spill = spill_budget.map(|bytes| {
            SpillPolicy::new(std::env::temp_dir().join("inferturbo-fused-tests"), bytes)
        });
        let cfg = PregelConfig::new(ClusterSpec::test_spec(workers))
            .with_activation(ActivationPolicy::AlwaysActive)
            .with_columnar(columnar)
            .with_spill(spill);
        let prog = PoolProg {
            dim: case.dim,
            op: case.op,
            agg: PoolRowAggregator { op: case.op },
            comb: VecPool { op: case.op },
        };
        let mut eng = PregelEngine::new(prog, cfg);
        for v in 0..case.n {
            eng.add_vertex(
                v as u64,
                PoolState {
                    feat: case.feats[v].clone(),
                    nbrs: case.nbrs[v].clone(),
                    agg: Vec::new(),
                    count: 0,
                },
            );
        }
        eng.run(2).unwrap();
        let mut out = vec![(Vec::new(), 0u32); case.n];
        eng.for_each_state(|id, st| {
            out[id as usize] = (st.agg.iter().map(|x| x.to_bits()).collect(), st.count);
        });
        out
    })
}

/// Materialize-then-reduce reference: raw message rows in single-worker
/// delivery order (vertex order, out-edge order), reduced by the tensor
/// segment kernels.
fn segment_reference(case: &Case) -> Vec<Vec<u32>> {
    let mut rows: Vec<f32> = Vec::new();
    let mut seg: Vec<u32> = Vec::new();
    for v in 0..case.n {
        for &d in &case.nbrs[v] {
            rows.extend_from_slice(&case.feats[v]);
            seg.push(d as u32);
        }
    }
    let m = Matrix::from_vec(seg.len(), case.dim, rows);
    let reduced = match case.op {
        PoolOp::Sum => m.segment_sum(&seg, case.n),
        PoolOp::Mean => m.segment_mean(&seg, case.n),
        PoolOp::Max => m.segment_max(&seg, case.n).0,
    };
    (0..case.n)
        .map(|v| reduced.row(v).iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn op_of(sel: u8) -> PoolOp {
    match sel {
        0 => PoolOp::Sum,
        1 => PoolOp::Mean,
        _ => PoolOp::Max,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fused scatter-aggregation == the legacy combiner path, bit for bit,
    /// for every pool op, worker count, and thread count.
    #[test]
    fn prop_fused_bit_identical_to_legacy_combiner(
        n in 2usize..24,
        e in 0usize..160,
        dim in 1usize..8,
        workers in 1usize..6,
        op_sel in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let case = build_case(n, e, dim, op_of(op_sel), seed);
        let fused = run_case(&case, workers, true, 1, None);
        let legacy = run_case(&case, workers, false, 1, None);
        prop_assert_eq!(&fused, &legacy, "fused vs legacy at {} workers", workers);
        // Thread budget must not change a single bit either.
        let fused_mt = run_case(&case, workers, true, 4, None);
        prop_assert_eq!(&fused, &fused_mt, "thread count changed fused bits");
        // Nor must paging the inboxes out of core: a tiny budget forces
        // every accumulator set through the disk path.
        let fused_spill = run_case(&case, workers, true, 2, Some(16));
        prop_assert_eq!(&fused, &fused_spill, "spilling changed fused bits");
    }

    /// Fused scatter-aggregation == materialize-then-segment_{sum,mean,max}
    /// over the raw rows: exact with a single worker (one fold sequence),
    /// and exact for max at any worker count (regrouping a max cannot
    /// change which input wins).
    #[test]
    fn prop_fused_bit_identical_to_segment_kernels(
        n in 2usize..24,
        e in 0usize..160,
        dim in 1usize..8,
        workers in 1usize..6,
        op_sel in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let op = op_of(op_sel);
        let case = build_case(n, e, dim, op, seed);
        let reference = segment_reference(&case);
        let w = if op == PoolOp::Max { workers } else { 1 };
        let fused = run_case(&case, w, true, 2, Some(16));
        for (v, ((bits, _), want)) in fused.iter().zip(&reference).enumerate() {
            prop_assert_eq!(bits, want, "vertex {} diverged from segment kernel", v);
        }
    }
}
