//! Serving-layer contract tests (see `inferturbo_serve`):
//!
//! 1. **Batching is invisible**: the logits a batched request receives are
//!    bit-identical to calling `run_with_features` sequentially, once per
//!    coalesced group, for every model × strategy combination and every
//!    thread budget.
//! 2. **Admission is inclusive at the boundary**, matching
//!    `Backend::Auto`'s `pregel_fits` semantics: a fleet whose summed peak
//!    residency equals the budget is admitted; one byte over is rejected
//!    (or shed, under `ShedOldest`).
//! 3. **FIFO response ordering under coalescing**: responses for one plan
//!    become ready in submission order even when a later-submitted group
//!    executes first.
//! 4. **Zero-copy plan reload**: repeated runs of one plan observe the
//!    same adjacency `Arc` in every record — the engine shares, never
//!    clones, the O(V+E) target lists.
//! 5. **Out-of-core admission**: a spill budget shrinks a plan's
//!    spill-aware `PlanEstimate`, so a configuration the fleet rejected
//!    at its in-memory residency admits — and serves bit-identically —
//!    once it pages its inboxes to disk.
//! 6. **Overload resolves, it never drops**: under a mixed
//!    deadline/throttle/breaker/stale trace every submitted request
//!    reaches exactly one terminal `ScoreStatus`, the whole pipeline
//!    replays identically at every thread count, and a `ServedStale`
//!    answer is bit-identical to the fresh run that populated the cache.

use std::sync::Arc;

use inferturbo::cluster::{FaultPlan, FaultSite};
use inferturbo::common::Parallelism;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use inferturbo::graph::Graph;
use inferturbo::serve::{
    AdmissionPolicy, BreakerConfig, FeatureSnapshot, GnnServer, RateLimitConfig, ScoreRequest,
    ScoreStatus, ServeConfig, ServerStats,
};

fn test_graph(skew: DegreeSkew) -> Graph {
    generate(&GenConfig {
        n_nodes: 120,
        n_edges: 700,
        feat_dim: 5,
        classes: 3,
        skew,
        alpha: 1.3,
        homophily: 0.4,
        seed: 77,
        ..GenConfig::default()
    })
}

fn models() -> Vec<(&'static str, GnnModel)> {
    vec![
        (
            "sage-mean",
            GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 1),
        ),
        (
            "sage-max",
            GnnModel::sage(5, 8, 2, 3, false, PoolOp::Max, 2),
        ),
        ("gcn", GnnModel::gcn(5, 8, 2, 3, false, 3)),
        ("gat", GnnModel::gat(5, 8, 2, 2, 3, false, 4)),
    ]
}

fn bits(logits: &[Vec<f32>]) -> Vec<Vec<u32>> {
    logits
        .iter()
        .map(|l| l.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn snapshot_scaled(g: &Graph, scale: f32) -> FeatureSnapshot {
    Arc::new(
        (0..g.n_nodes() as u32)
            .map(|v| g.node_feat(v).iter().map(|x| x * scale).collect())
            .collect(),
    )
}

/// The acceptance-criterion suite: for every model × strategy combo and
/// several thread budgets, a server batch over two snapshots plus the
/// graph's own features must be bit-identical to sequential
/// `run_with_features` calls per coalesced group.
#[test]
fn batched_serving_bit_identical_to_sequential_for_every_combo() {
    let g = test_graph(DegreeSkew::Out);
    let snap_a = snapshot_scaled(&g, 0.9);
    let snap_b = snapshot_scaled(&g, 1.1);
    for (name, m) in models() {
        for pg in [false, true] {
            for sn in [false, true] {
                let strat = StrategyConfig::none()
                    .with_partial_gather(pg)
                    .with_broadcast(true)
                    .with_shadow_nodes(sn)
                    .with_threshold(5);
                // Sequential ground truth: one plan, one run per group, at
                // the serial budget.
                let plan = InferenceSession::builder()
                    .model(&m)
                    .graph(&g)
                    .workers(8)
                    .strategy(strat)
                    .backend(Backend::Pregel)
                    .plan()
                    .unwrap();
                let (want_own, want_a, want_b) = Parallelism::with(1, || {
                    (
                        bits(&plan.run().unwrap().logits),
                        bits(&plan.run_with_features(&snap_a).unwrap().logits),
                        bits(&plan.run_with_features(&snap_b).unwrap().logits),
                    )
                });

                for threads in [1usize, 2, 4] {
                    let mut server = GnnServer::new(ServeConfig {
                        max_batch: 16,
                        max_wait: 0,
                        ..ServeConfig::default()
                    });
                    server.register_model(1, &m).unwrap();
                    server.register_graph(1, &g).unwrap();
                    let base = ScoreRequest::new(1, 1)
                        .with_workers(8)
                        .with_strategy(strat)
                        .with_backend(Backend::Pregel);
                    // Interleave submissions across the three groups, with
                    // per-request target subsets, then serve everything at
                    // this thread budget.
                    let responses = Parallelism::with(threads, || {
                        let mut tickets = Vec::new();
                        for i in 0..6u32 {
                            let req = match i % 3 {
                                0 => base.clone(),
                                1 => base.clone().with_snapshot(Arc::clone(&snap_a)),
                                _ => base.clone().with_snapshot(Arc::clone(&snap_b)),
                            };
                            let req = if i < 3 {
                                req // full logits
                            } else {
                                req.with_targets(vec![i, i * 7 % 120, 119])
                            };
                            tickets.push((i, server.submit(req).unwrap()));
                        }
                        server.tick();
                        tickets
                            .into_iter()
                            .map(|(i, t)| (i, server.take(t).expect("response ready")))
                            .collect::<Vec<_>>()
                    });
                    assert_eq!(server.stats().batches, 3, "{name}: one run per group");
                    assert_eq!(server.stats().served, 6);
                    for (i, resp) in responses {
                        let want = match i % 3 {
                            0 => &want_own,
                            1 => &want_a,
                            _ => &want_b,
                        };
                        let got = resp.logits().expect("served");
                        if i < 3 {
                            assert_eq!(
                                bits(got),
                                *want,
                                "{name} pg={pg} sn={sn} t={threads}: full logits diverged"
                            );
                        } else {
                            let targets = [i, i * 7 % 120, 119];
                            for (j, &v) in targets.iter().enumerate() {
                                assert_eq!(
                                    bits(std::slice::from_ref(&got[j])),
                                    vec![want[v as usize].clone()],
                                    "{name} pg={pg} sn={sn} t={threads}: node {v} diverged"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Admission applies the §IV-A comparison fleet-wide and inclusively:
/// exactly at the budget the plan is admitted, one byte under it is
/// rejected.
#[test]
fn admission_rejects_exactly_at_the_budget_boundary() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    // Probe the plan's residency once.
    let probe = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .backend(Backend::Pregel)
        .plan()
        .unwrap();
    let resident = probe.estimate().pregel_peak_worker_bytes;
    assert!(resident > 0);

    // Budget == residency: admitted (inclusive, like Backend::Auto).
    let mut server = GnnServer::new(ServeConfig {
        memory_budget: resident,
        policy: AdmissionPolicy::Reject,
        max_batch: 1,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let req = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    let t = server.submit(req.clone()).unwrap();
    assert!(matches!(
        server.take(t).unwrap().status,
        ScoreStatus::Served(_)
    ));
    assert_eq!(server.admission().remaining(), 0);

    // A second distinct plan (different worker count) no longer fits.
    let err = server
        .submit(req.clone().with_workers(8))
        .expect_err("fleet budget exhausted");
    assert!(err.to_string().contains("admission denied"), "{err}");
    assert_eq!(server.stats().rejected, 1);
    // The admitted plan keeps serving.
    let t = server.submit(req).unwrap();
    assert!(server.take(t).is_some());

    // Budget one byte short: the same plan is rejected outright.
    let mut tight = GnnServer::new(ServeConfig {
        memory_budget: resident - 1,
        policy: AdmissionPolicy::Reject,
        max_batch: 1,
        ..ServeConfig::default()
    });
    tight.register_model(1, &m).unwrap();
    tight.register_graph(1, &g).unwrap();
    let err = tight
        .submit(
            ScoreRequest::new(1, 1)
                .with_workers(4)
                .with_backend(Backend::Pregel),
        )
        .expect_err("one byte under the boundary");
    assert!(err.to_string().contains("admission denied"), "{err}");
}

/// The out-of-core admission path: a plan the fleet just rejected at its
/// in-memory residency admits once a spill budget shrinks its
/// `PlanEstimate` — and serves bit-identical logits, with the disk plane
/// visible in `ServerStats`.
#[test]
fn spill_budget_admits_a_plan_the_fleet_just_rejected() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    // Materialized columnar rows: the O(E·d) inbox dominates the plan's
    // residency, so spilling it moves real bytes off the resident plane.
    let strat = StrategyConfig::none().with_partial_gather(false);
    let probe = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .strategy(strat)
        .backend(Backend::Pregel)
        .plan()
        .unwrap();
    let resident = probe.estimate().pregel_peak_worker_bytes;
    let want = bits(&probe.run().unwrap().logits);

    // Budget one byte short of the in-memory residency: rejected.
    let mut server = GnnServer::new(ServeConfig {
        memory_budget: resident - 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let req = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_strategy(strat)
        .with_backend(Backend::Pregel);
    let err = server
        .submit(req.clone())
        .expect_err("must not fit in memory");
    assert!(err.to_string().contains("admission denied"), "{err}");
    assert_eq!(server.stats().rejected, 1);

    // The same configuration under a 512-byte spill window now fits the
    // very fleet that rejected it, serves bit-identically, and reports
    // the spilled plane.
    let t = server.submit(req.with_spill_budget(512)).unwrap();
    let resp = server.take(t).expect("response ready");
    assert_eq!(bits(resp.logits().expect("served")), want);
    assert_eq!(server.stats().plans_built, 1);
    assert!(
        server.admission().resident_bytes() < resident,
        "admission must charge the reduced (spill-aware) residency"
    );
    assert!(
        server.stats().spilled_bytes > 0,
        "the run must actually have paged inbox rows to disk"
    );
}

/// Under `ShedOldest`, a newcomer that does not fit evicts the oldest
/// admitted plan; the evicted plan's pending requests complete with
/// `Shed`, in FIFO order, and its budget is released.
#[test]
fn shed_oldest_evicts_the_oldest_plan_and_sheds_its_queue() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    let probe = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .backend(Backend::Pregel)
        .plan()
        .unwrap();
    let resident = probe.estimate().pregel_peak_worker_bytes;

    // Budget fits one 4-worker plan but not two plans at once.
    let mut server = GnnServer::new(ServeConfig {
        memory_budget: resident + resident / 2,
        policy: AdmissionPolicy::ShedOldest,
        max_batch: 100,
        max_wait: 100, // nothing flushes on its own
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let old = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel)
        .with_targets(vec![3]);
    let t1 = server.submit(old.clone()).unwrap();
    let t2 = server.submit(old).unwrap();
    assert_eq!(server.pending(), 2);

    // A second plan arrives and forces the first out.
    let newcomer = ScoreRequest::new(1, 1)
        .with_workers(8)
        .with_backend(Backend::Pregel)
        .with_targets(vec![3]);
    let t3 = server.submit(newcomer).unwrap();
    assert_eq!(server.stats().shed, 2);
    assert_eq!(server.cached_plans(), 1, "old plan evicted");
    // Shed responses are ready immediately, in submission order.
    let shed: Vec<_> = server.drain_ready();
    assert_eq!(shed.len(), 2);
    assert_eq!(shed[0].ticket, t1);
    assert_eq!(shed[1].ticket, t2);
    assert!(shed.iter().all(|r| r.status == ScoreStatus::Shed));
    // A drained (or taken) shed ticket is consumed: a later take is a
    // well-defined None, never a panic or a stale response.
    assert!(server.take(t1).is_none());
    assert!(server.take(t2).is_none());
    // The newcomer still serves.
    server.drain();
    assert!(matches!(
        server.take(t3).unwrap().status,
        ScoreStatus::Served(_)
    ));
}

/// Under `ShedOldest`, a `Backend::Auto` plan resolves its backend
/// against the FULL fleet budget (admission will evict older plans to
/// make room), not just the unclaimed remainder — otherwise the shedding
/// policy could never help a newcomer run resident.
#[test]
fn shed_oldest_lets_auto_plans_claim_the_full_budget() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 6);
    let probe = |workers: usize| {
        InferenceSession::builder()
            .model(&m)
            .graph(&g)
            .workers(workers)
            .backend(Backend::Pregel)
            .plan()
            .unwrap()
            .estimate()
            .pregel_peak_worker_bytes
    };
    let (r4, r8) = (probe(4), probe(8));
    assert!(r8 < r4, "8 workers spread state thinner per worker");

    // Budget exactly fits the 4-worker Pregel plan; an 8-worker plan
    // occupies part of it first.
    let mut server = GnnServer::new(ServeConfig {
        memory_budget: r4,
        policy: AdmissionPolicy::ShedOldest,
        max_batch: 1,
        max_wait: 0,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    server
        .submit(
            ScoreRequest::new(1, 1)
                .with_workers(8)
                .with_backend(Backend::Pregel)
                .with_targets(vec![0]),
        )
        .unwrap();
    assert_eq!(server.admission().resident_bytes(), r8);

    // The Auto newcomer must still resolve to Pregel (full budget r4
    // available via shedding), evicting the 8-worker plan — not degrade
    // to MapReduce against the r4 - r8 remainder.
    let t = server
        .submit(
            ScoreRequest::new(1, 1)
                .with_workers(4)
                .with_backend(Backend::Auto)
                .with_targets(vec![0]),
        )
        .unwrap();
    assert!(matches!(
        server.take(t).unwrap().status,
        ScoreStatus::Served(_)
    ));
    assert_eq!(
        server.admission().resident_bytes(),
        r4,
        "Auto resolved to resident Pregel at the full budget"
    );
    assert_eq!(server.cached_plans(), 1, "the older plan was shed");
}

/// A later-submitted group can execute first (it fills `max_batch`), but
/// responses still become ready in submission order within the plan.
#[test]
fn fifo_response_ordering_under_coalescing() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 1);
    let snap = snapshot_scaled(&g, 0.8);
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 3,
        max_wait: 5,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let base = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_targets(vec![7]);

    // Ticket 0 opens the graph-features group; tickets 1..=3 fill the
    // snapshot group, which flushes first (max_batch = 3).
    let t0 = server.submit(base.clone()).unwrap();
    let mut snap_tickets = Vec::new();
    for _ in 0..3 {
        snap_tickets.push(
            server
                .submit(base.clone().with_snapshot(Arc::clone(&snap)))
                .unwrap(),
        );
    }
    assert_eq!(
        server.stats().batches,
        1,
        "snapshot group executed at max_batch"
    );
    // ...but nothing is ready: ticket 0's group has not run, and FIFO
    // holds later responses behind it.
    assert_eq!(server.ready_len(), 0, "FIFO gate holds out-of-order batch");
    assert_eq!(server.pending(), 1);

    // Age the remaining group out (max_wait full ticks + the partial one
    // the submit landed in); everything releases in ticket order.
    for _ in 0..6 {
        server.tick();
    }
    let ready = server.drain_ready();
    assert_eq!(ready.len(), 4);
    assert_eq!(ready[0].ticket, t0);
    for (i, t) in snap_tickets.iter().enumerate() {
        assert_eq!(ready[i + 1].ticket, *t);
    }
    // And the FIFO gate never changed the answers: group membership
    // decides values, not execution order.
    let own = bits(&[ready[0].logits().unwrap()[0].clone()]);
    let refreshed = bits(&[ready[1].logits().unwrap()[0].clone()]);
    assert_ne!(own, refreshed, "distinct snapshots produce distinct logits");
    for r in &ready[2..] {
        assert_eq!(bits(&[r.logits().unwrap()[0].clone()]), refreshed);
    }
}

/// The zero-copy plan reload contract: repeated runs observe the same
/// adjacency `Arc` in every planned record — nothing re-clones the
/// O(V+E) target lists per run.
#[test]
fn plan_runs_share_the_same_out_targets_arc() {
    let g = test_graph(DegreeSkew::Out);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 2);
    let plan = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .strategy(StrategyConfig::all().with_threshold(5))
        .backend(Backend::Pregel)
        .plan()
        .unwrap();
    // Hold independent handles to every record's adjacency before any run.
    let before: Vec<Arc<[u64]>> = plan
        .records()
        .iter()
        .map(|r| Arc::clone(&r.out_targets))
        .collect();
    let a = plan.run().unwrap();
    let b = plan.run().unwrap();
    assert_eq!(bits(&a.logits), bits(&b.logits));
    // Two runs later the plan still holds the very same allocations...
    for (h, rec) in before.iter().zip(plan.records()) {
        assert!(
            Arc::ptr_eq(h, &rec.out_targets),
            "run must not replace the adjacency Arc"
        );
    }
    // ...and nothing else kept a clone alive: both runs loaded vertex
    // states by handle and dropped them, so each Arc has exactly our
    // probe handle plus the record's own.
    for h in &before {
        assert_eq!(
            Arc::strong_count(h),
            2,
            "a run leaked or deep-copied an adjacency Arc"
        );
    }
}

/// Serving through MapReduce plans works identically (the batcher is
/// backend-agnostic) and admission accounts their streamed residency.
#[test]
fn mapreduce_plans_serve_and_account() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 4);
    let plan = InferenceSession::builder()
        .model(&m)
        .graph(&g)
        .workers(4)
        .backend(Backend::MapReduce)
        .plan()
        .unwrap();
    let want = bits(&plan.run().unwrap().logits);
    let mr_resident = plan.estimate().mapreduce_peak_worker_bytes;

    let mut server = GnnServer::new(ServeConfig {
        max_batch: 2,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let req = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::MapReduce);
    let t1 = server.submit(req.clone()).unwrap();
    let t2 = server.submit(req).unwrap();
    assert_eq!(server.admission().resident_bytes(), mr_resident);
    assert_eq!(server.stats().batches, 1);
    for t in [t1, t2] {
        assert_eq!(bits(server.take(t).unwrap().logits().unwrap()), want);
    }
}

// ---------------------------------------------------------------------------
// Overload resilience: deadlines, rate limits, breakers, stale service
// ---------------------------------------------------------------------------

/// The overload pipeline's knobs, pinned explicitly (immune to the
/// `INFERTURBO_OVERLOAD` CI drill, which only reaches defaulted fields):
/// a 2-token Degrade-policy bucket, a 2-run/50% breaker with a 2-tick
/// cooldown, no serve retries and no quarantine — the breaker is the only
/// containment actor — and a fault schedule that fails exactly the first
/// two runs.
fn overload_trace_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        max_wait: 10,
        max_run_retries: 0,
        quarantine_after: 0,
        fault_plan: Some(
            FaultPlan::new().and_fail_times(FaultSite::WorkerCompute { worker: 0, step: 1 }, 2),
        ),
        recovery: None,
        rate_limit: Some(RateLimitConfig::degrade(2, 1)),
        breaker: Some(BreakerConfig {
            window_ticks: 8,
            min_runs: 2,
            trip_pct: 50,
            cooldown_ticks: 2,
        }),
        response_cache: 4096,
        deadline_clamp: None,
        ..ServeConfig::default()
    }
}

/// Replay the mixed overload trace once: two failing runs trip the
/// breaker, an open-breaker submit fast-fails, the cooldown probe
/// recovers and fills the response cache, a tenant burst throttles into
/// stale service, a deadline expires, and an uncached-snapshot throttle
/// resolves `Throttled` — every stage of the pipeline in one script.
///
/// Returns the final [`ServerStats`] and every response as
/// `(ticket, status kind, logits bits)`, and asserts the terminal-status
/// invariant inline: the response set is exactly the ticket set (no
/// request lost, none resolved twice).
#[allow(clippy::type_complexity)]
fn run_overload_trace(
    g: &Graph,
    m: &GnnModel,
) -> (ServerStats, Vec<(u64, &'static str, Option<Vec<Vec<u32>>>)>) {
    let mut server = GnnServer::new(overload_trace_config());
    server.register_model(1, m).unwrap();
    server.register_graph(1, g).unwrap();
    let base = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_backend(Backend::Pregel);
    let mut tickets = Vec::new();

    // Phase 1 — the armed fault fails the first two runs; the breaker's
    // 2-run window hits 100% failure on the second and opens.
    for _ in 0..2 {
        tickets.push(
            server
                .submit(base.clone().with_targets(vec![0, 1]))
                .unwrap(),
        );
        server.drain();
    }
    // Phase 2 — breaker open, response cache still empty: fast-fail.
    let err = server
        .submit(base.clone().with_targets(vec![0, 1]))
        .unwrap_err();
    assert!(err.to_string().contains("circuit breaker open"), "{err}");
    // Phase 3 — the 2-tick cooldown elapses; the next batch is the
    // HalfOpen probe. It succeeds (the fault budget is drained),
    // re-closes the breaker, and fills the cache with every node's row.
    for _ in 0..3 {
        server.tick();
    }
    tickets.push(server.submit(base.clone()).unwrap());
    server.drain();
    // Phase 4 — tenant burst: the 2-token bucket admits two fresh
    // requests; the overflow degrades and now finds cached rows.
    for _ in 0..4 {
        tickets.push(
            server
                .submit(base.clone().with_tenant(9).with_targets(vec![1]))
                .unwrap(),
        );
    }
    server.drain();
    // Phase 5 — deadlines: a 0-tick budget expires at the next tick; a
    // 5-tick budget survives to the drain and serves.
    tickets.push(
        server
            .submit(base.clone().with_deadline(0).with_targets(vec![2]))
            .unwrap(),
    );
    tickets.push(
        server
            .submit(base.clone().with_deadline(5).with_targets(vec![2]))
            .unwrap(),
    );
    server.tick();
    server.drain();
    // Phase 6 — a throttled request naming a snapshot the cache has never
    // seen cannot be served stale: it resolves `Throttled`.
    let snap = snapshot_scaled(g, 0.7);
    tickets.push(
        server
            .submit(
                base.clone()
                    .with_tenant(9)
                    .with_snapshot(Arc::clone(&snap))
                    .with_targets(vec![0]),
            )
            .unwrap(),
    );
    tickets.push(
        server
            .submit(
                base.clone()
                    .with_tenant(9)
                    .with_snapshot(Arc::clone(&snap))
                    .with_targets(vec![0]),
            )
            .unwrap(),
    );
    server.drain();

    let responses: Vec<(u64, &'static str, Option<Vec<Vec<u32>>>)> = server
        .drain_ready()
        .into_iter()
        .map(|r| {
            let kind = match &r.status {
                ScoreStatus::Served(_) => "served",
                ScoreStatus::ServedStale(_) => "stale",
                ScoreStatus::Shed => "shed",
                ScoreStatus::DeadlineExceeded { .. } => "deadline",
                ScoreStatus::Throttled => "throttled",
                ScoreStatus::Failed(_) => "failed",
            };
            let b = r.logits().map(bits);
            (r.ticket.0, kind, b)
        })
        .collect();

    // ACCEPTANCE: every submitted request reached exactly one terminal
    // status — the response set is exactly the ticket set.
    let mut got: Vec<u64> = responses.iter().map(|r| r.0).collect();
    got.sort_unstable();
    let mut want: Vec<u64> = tickets.iter().map(|t| t.0).collect();
    want.sort_unstable();
    assert_eq!(got, want, "no request lost, none resolved twice");
    assert_eq!(server.pending(), 0);
    assert_eq!(server.ready_len(), 0);
    for t in tickets {
        assert!(
            server.take(t).is_none(),
            "tickets are consumed exactly once"
        );
    }
    (server.stats().clone(), responses)
}

#[test]
fn overload_trace_resolves_every_request_and_counts_every_stage() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 5);
    let (stats, responses) = run_overload_trace(&g, &m);

    let count = |kind: &str| responses.iter().filter(|r| r.1 == kind).count() as u64;
    assert_eq!(count("failed"), 2, "two faulted runs");
    assert_eq!(
        count("served"),
        5,
        "probe + 2 fresh tenant + deadline-5 + snapshot"
    );
    assert_eq!(count("stale"), 2, "the tenant burst's overflow");
    assert_eq!(count("deadline"), 1);
    assert_eq!(count("throttled"), 1, "uncached snapshot overflow");
    assert_eq!(count("shed"), 0);

    assert_eq!(stats.submitted, 11);
    assert_eq!(stats.served, 5);
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.overload.served_stale, 2);
    assert_eq!(stats.overload.throttled, 1);
    assert_eq!(stats.overload.deadline_exceeded, 1);
    assert_eq!(stats.overload.breaker_opens, 1);
    assert_eq!(stats.overload.breaker_rejections, 1);
    assert_eq!(stats.overload.cache_hits, 2);
    assert_eq!(
        stats.overload.cache_misses, 2,
        "open-breaker miss + snapshot miss"
    );
    assert_eq!(
        stats.batches, 6,
        "expired and degraded work never bought a run"
    );

    // The stale answers are bit-identical to the probe run's rows: both
    // tenant-overflow responses asked for node 1, and the probe response
    // carried every node.
    let probe = responses
        .iter()
        .find(|r| r.1 == "served")
        .and_then(|r| r.2.clone())
        .expect("probe served full logits");
    for r in responses.iter().filter(|r| r.1 == "stale") {
        assert_eq!(
            r.2.as_deref(),
            Some(&[probe[1].clone()][..]),
            "stale row == populating run's row"
        );
    }
}

/// Same trace + same config => identical stats and bit-identical
/// responses at every thread budget: the whole overload pipeline (token
/// buckets, breaker windows, expiry, cache contents) lives on the logical
/// clock, so parallelism cannot perturb it.
#[test]
fn overload_trace_is_deterministic_across_thread_counts() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 5);
    let baseline = Parallelism::with(1, || run_overload_trace(&g, &m));
    for threads in [2usize, 4] {
        let got = Parallelism::with(threads, || run_overload_trace(&g, &m));
        assert_eq!(
            got.0, baseline.0,
            "ServerStats diverged at {threads} threads"
        );
        assert_eq!(got.1, baseline.1, "responses diverged at {threads} threads");
    }
}

/// ACCEPTANCE: a `ServedStale` response is bit-identical to the fresh run
/// that populated the cache — full-logits answers and target slices both.
#[test]
fn served_stale_is_bit_identical_to_the_populating_run() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 9);
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 1,
        // One token, never refilled: the second tenant request degrades.
        rate_limit: Some(RateLimitConfig::degrade(1, 0)),
        deadline_clamp: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let base = ScoreRequest::new(1, 1).with_workers(4);
    // Fresh untenanted full-logits run populates the cache.
    let t_fresh = server.submit(base.clone()).unwrap();
    let fresh = server.take(t_fresh).unwrap();
    assert!(!fresh.is_stale());
    let fresh_bits = bits(fresh.logits().unwrap());
    // Tenant 3 burns its only token on a fresh request...
    server
        .submit(base.clone().with_tenant(3).with_targets(vec![5]))
        .unwrap();
    // ...so its next full-logits request is served from the cache.
    let t_stale = server.submit(base.clone().with_tenant(3)).unwrap();
    let stale = server.take(t_stale).unwrap();
    assert!(stale.is_stale());
    assert_eq!(
        bits(stale.logits().unwrap()),
        fresh_bits,
        "stale full-logits answer == populating run"
    );
    // Target slices come from the same rows.
    let t_slice = server
        .submit(base.clone().with_tenant(3).with_targets(vec![5, 17]))
        .unwrap();
    let slice = server.take(t_slice).unwrap();
    assert!(slice.is_stale());
    assert_eq!(
        bits(slice.logits().unwrap()),
        vec![fresh_bits[5].clone(), fresh_bits[17].clone()]
    );
    assert_eq!(server.stats().overload.served_stale, 2);
    assert!(server.stats().overload.cache_hit_ratio() > 0.99);
}

/// Deadline expiry is ordered before aging inside a tick: a request whose
/// deadline and group age fire on the same tick resolves
/// `DeadlineExceeded` and never occupies a slot in the batch that flushes.
#[test]
fn deadline_expiry_runs_before_aging_and_frees_the_batch_slot() {
    let g = test_graph(DegreeSkew::In);
    let m = GnnModel::sage(5, 8, 2, 3, false, PoolOp::Mean, 9);
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 100,
        max_wait: 0,
        deadline_clamp: None,
        ..ServeConfig::default()
    });
    server.register_model(1, &m).unwrap();
    server.register_graph(1, &g).unwrap();
    let base = ScoreRequest::new(1, 1)
        .with_workers(4)
        .with_targets(vec![0]);
    // Same group: D (deadline 0) and K (no deadline), both due next tick.
    let t_d = server.submit(base.clone().with_deadline(0)).unwrap();
    let t_k = server.submit(base).unwrap();
    assert_eq!(server.tick(), 2, "both resolve on the tick");
    let d = server.take(t_d).unwrap();
    assert_eq!(d.status, ScoreStatus::DeadlineExceeded { deadline: 0 });
    let d_err = d.as_result().unwrap_err();
    assert!(!d_err.is_transient(), "missed deadlines are never retried");
    assert!(matches!(
        server.take(t_k).unwrap().status,
        ScoreStatus::Served(_)
    ));
    assert_eq!(server.stats().overload.deadline_exceeded, 1);
    assert_eq!(server.stats().served, 1);
    assert_eq!(
        server.stats().batches,
        1,
        "the expired request bought no run"
    );
}
