//! The flight recorder's golden-trace contract, end to end: a traced run
//! renders the **same bytes** at every thread count, because emission
//! happens only at single-threaded barriers in logical time — never from
//! inside worker tasks. The contract extends across backends, across the
//! out-of-core spill path, and across checkpoint-recovery replays: a
//! faulted-and-recovered run's trace equals the clean run's trace plus a
//! separable `site=recovery` plane.

use inferturbo::cluster::{FaultPlan, RecoveryPolicy};
use inferturbo::common::Parallelism;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use inferturbo::graph::Graph;
use inferturbo::obs::{inspect, Payload, TraceHandle};

const THREADS: &[usize] = &[1, 2, 4];

fn test_graph() -> Graph {
    generate(&GenConfig {
        n_nodes: 200,
        n_edges: 1200,
        feat_dim: 8,
        classes: 3,
        skew: DegreeSkew::Out,
        seed: 11,
        ..GenConfig::default()
    })
}

fn model() -> GnnModel {
    GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 7)
}

/// One traced run under `threads`, returning the rendered trace bytes.
fn traced_run(
    graph: &Graph,
    model: &GnnModel,
    threads: usize,
    backend: Backend,
    spill_budget: Option<u64>,
    faults: Option<&str>,
) -> String {
    Parallelism::with(threads, || {
        let trace = TraceHandle::recording();
        let mut builder = InferenceSession::builder()
            .model(model)
            .graph(graph)
            .workers(4)
            .backend(backend)
            .trace(trace.clone());
        if let Some(bytes) = spill_budget {
            // Materialized columnar inboxes (no partial gather): the
            // O(E·d) inbox dominates residency, so a 4 KiB window pages.
            builder = builder
                .strategy(StrategyConfig::all().with_partial_gather(false))
                .spill_budget(bytes);
        }
        if let Some(spec) = faults {
            builder = builder
                .fault_plan(FaultPlan::parse(spec).expect("fault spec"))
                .recovery(RecoveryPolicy::new(1, 3));
        }
        let plan = builder.plan().expect("plan");
        plan.run().expect("run");
        trace.render()
    })
}

/// Drop the durable recovery plane (`site=recovery` lines) from a trace.
fn strip_recovery(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| !l.contains(" site=recovery "))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn pregel_trace_is_byte_identical_across_thread_counts() {
    let g = test_graph();
    let m = model();
    let want = traced_run(&g, &m, 1, Backend::Pregel, None, None);
    assert!(!want.is_empty(), "traced run must record events");
    assert!(want.contains("kind=superstep"), "{want}");
    assert!(want.contains("site=worker:3"), "{want}");
    for &t in THREADS {
        let got = traced_run(&g, &m, t, Backend::Pregel, None, None);
        assert_eq!(want, got, "trace bytes diverged at {t} threads");
    }
}

#[test]
fn mapreduce_trace_is_byte_identical_across_thread_counts() {
    let g = test_graph();
    let m = model();
    let want = traced_run(&g, &m, 1, Backend::MapReduce, None, None);
    assert!(want.contains("kind=round"), "{want}");
    assert!(want.contains("round_kind=map"), "{want}");
    assert!(want.contains("round_kind=reduce"), "{want}");
    for &t in THREADS {
        let got = traced_run(&g, &m, t, Backend::MapReduce, None, None);
        assert_eq!(want, got, "trace bytes diverged at {t} threads");
    }
}

#[test]
fn spilled_trace_is_byte_identical_and_reports_the_spill_plane() {
    let g = test_graph();
    let m = model();
    let want = traced_run(&g, &m, 1, Backend::Pregel, Some(4096), None);
    // The spill plane must actually engage and surface in the trace.
    let events = inspect::parse_trace(&want).expect("well-formed trace");
    let spilled: u64 = events
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::Superstep { spilled_bytes, .. } => Some(*spilled_bytes),
            _ => None,
        })
        .sum();
    assert!(spilled > 0, "4 KiB budget must page inbox rows: {want}");
    for &t in THREADS {
        let got = traced_run(&g, &m, t, Backend::Pregel, Some(4096), None);
        assert_eq!(want, got, "spilled trace diverged at {t} threads");
    }
}

#[test]
fn recovered_trace_is_identical_across_threads_and_separable() {
    let g = test_graph();
    let m = model();
    let faulted = traced_run(&g, &m, 1, Backend::Pregel, None, Some("worker:1@step:1"));
    assert!(faulted.contains("site=recovery"), "{faulted}");
    assert!(faulted.contains("kind=retry"), "{faulted}");
    for &t in THREADS {
        let got = traced_run(&g, &m, t, Backend::Pregel, None, Some("worker:1@step:1"));
        assert_eq!(faulted, got, "recovered trace diverged at {t} threads");
    }
    // Stripping the durable recovery plane must yield exactly the clean
    // run's trace: the replayed supersteps rewound their events, so the
    // core plane never shows the failed attempt. Only comparable when the
    // environment isn't injecting extra faults into the clean run.
    if std::env::var_os("INFERTURBO_FAULTS").is_none() {
        let clean = traced_run(&g, &m, 1, Backend::Pregel, None, None);
        assert_eq!(strip_recovery(&faulted), clean);
    }
}

#[test]
fn traces_round_trip_through_the_inspector() {
    let g = test_graph();
    let m = model();
    for backend in [Backend::Pregel, Backend::MapReduce] {
        let rendered = traced_run(&g, &m, 2, backend, None, None);
        let events = inspect::parse_trace(&rendered).expect("well-formed trace");
        let rerendered: String = events.iter().map(|e| format!("{e}\n")).collect();
        assert_eq!(rendered, rerendered, "parse → render must be lossless");
    }
}
