//! Property-based cross-crate invariants: for randomly generated graphs
//! and model shapes, the backends must agree with the reference and the
//! strategies must be cost-only transformations.

use inferturbo::cluster::ClusterSpec;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::strategy::{build_node_records, StrategyConfig};
use inferturbo::core::{infer_mapreduce, infer_pregel, infer_reference};
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn backends_match_reference_on_random_graphs(
        seed in 0u64..1000,
        n_nodes in 30usize..120,
        avg_deg in 1usize..8,
        skew_sel in 0u8..3,
        model_sel in 0u8..3,
        workers in 1usize..9,
        threshold in 2u32..30,
    ) {
        let skew = match skew_sel {
            0 => DegreeSkew::In,
            1 => DegreeSkew::Out,
            _ => DegreeSkew::None,
        };
        let g = generate(&GenConfig {
            n_nodes,
            n_edges: n_nodes * avg_deg,
            feat_dim: 5,
            classes: 3,
            skew,
            seed,
            ..GenConfig::default()
        });
        let model = match model_sel {
            0 => GnnModel::sage(5, 6, 2, 3, false, PoolOp::Mean, seed),
            1 => GnnModel::gcn(5, 6, 2, 3, false, seed),
            _ => GnnModel::gat(5, 6, 2, 2, 3, false, seed),
        };
        let want = infer_reference(&model, &g).expect("reference");
        let strat = StrategyConfig::all().with_threshold(threshold);
        let pregel = infer_pregel(&model, &g, ClusterSpec::pregel_cluster(workers), strat)
            .unwrap();
        let mr = infer_mapreduce(&model, &g, ClusterSpec::mapreduce_cluster(workers), strat)
            .unwrap();
        for (v, want_row) in want.iter().enumerate() {
            for (c, &wv) in want_row.iter().enumerate() {
                prop_assert!((pregel.logits[v][c] - wv).abs() < 2e-3,
                    "pregel v={} c={}: {} vs {}", v, c, pregel.logits[v][c], wv);
                prop_assert!((mr.logits[v][c] - wv).abs() < 2e-3,
                    "mr v={} c={}: {} vs {}", v, c, mr.logits[v][c], wv);
            }
        }
    }

    #[test]
    fn shadow_transform_conserves_edges_and_degrees(
        seed in 0u64..1000,
        n_nodes in 20usize..100,
        avg_deg in 1usize..10,
        threshold in 1u32..20,
    ) {
        let g = generate(&GenConfig {
            n_nodes,
            n_edges: n_nodes * avg_deg,
            feat_dim: 2,
            classes: 2,
            skew: DegreeSkew::Out,
            seed,
            ..GenConfig::default()
        });
        let strat = StrategyConfig::none().with_shadow_nodes(true).with_threshold(threshold);
        let records = build_node_records(&g, &strat, 4).expect("records");
        let out_deg = g.out_degrees();
        // every original node appears as mirror 0
        let mirror0 = records.iter()
            .filter(|r| inferturbo::core::strategy::mirror_of(r.wire) == 0)
            .count();
        prop_assert_eq!(mirror0, n_nodes);
        // logical degrees preserved on every mirror
        for r in &records {
            prop_assert_eq!(r.out_deg, out_deg[r.base as usize]);
        }
        // each original edge delivered exactly once per destination mirror:
        // total targets = sum over edges of (#mirrors of dst)
        let groups: Vec<u32> = (0..n_nodes as u32).map(|v| {
            if out_deg[v as usize] > threshold {
                out_deg[v as usize].div_ceil(threshold)
            } else { 1 }
        }).collect();
        let expected: usize = g.dst().iter().map(|&d| groups[d as usize] as usize).sum();
        let total: usize = records.iter().map(|r| r.out_targets.len()).sum();
        prop_assert_eq!(total, expected);
        // no mirror's physical out-share exceeds threshold unless unsplit
        for r in &records {
            if out_deg[r.base as usize] > threshold {
                let per_mirror_share = r.out_targets.iter()
                    .map(|&t| 1.0 / groups[inferturbo::core::strategy::base_of(t) as usize] as f64)
                    .sum::<f64>();
                prop_assert!(per_mirror_share <= threshold as f64 + 1e-6,
                    "mirror of {} carries {} original edges (threshold {})",
                    r.base, per_mirror_share, threshold);
            }
        }
    }

    #[test]
    fn strategy_threshold_formula(edges in 1usize..10_000_000, workers in 1usize..5000) {
        let s = StrategyConfig::all();
        let t = s.threshold(edges, workers);
        prop_assert!(t >= 1);
        let expect = (0.1 * edges as f64 / workers as f64) as u64;
        prop_assert!(t == expect.max(1));
    }
}
