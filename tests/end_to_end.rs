//! End-to-end integration: train mini-batch → export signature →
//! full-graph inference on both backends → identical, stable predictions.
//! This is the paper's C1 (unified training/inference) exercised across
//! every crate in the workspace.

use inferturbo::cluster::ClusterSpec;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::signature;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::train::{evaluate, train, TrainConfig};
use inferturbo::core::{infer_mapreduce, infer_pregel, infer_reference};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::{Dataset, Split};

fn small_dataset() -> Dataset {
    let mut d = Dataset::power_law(800, 4800, DegreeSkew::In, 17);
    // power-law datasets label only a millesimal of nodes — far too few at
    // this test scale, so widen the train split
    d.split = (0..800)
        .map(|i| {
            if i % 3 == 0 {
                Split::Train
            } else {
                Split::Test
            }
        })
        .collect();
    d
}

fn train_small(dataset: &Dataset) -> GnnModel {
    let feat = dataset.graph.node_feat_dim();
    let classes = dataset.graph.labels().num_classes() as usize;
    let mut model = GnnModel::sage(feat, 16, 2, classes, false, PoolOp::Mean, 4);
    // power-law datasets label only a millesimal; take what's there
    let cfg = TrainConfig {
        steps: 30,
        batch_size: 16,
        fanout: Some(8),
        lr: 1e-2,
        ..TrainConfig::default()
    };
    train(&mut model, dataset, &cfg).expect("training");
    model
}

#[test]
fn train_export_infer_pipeline() {
    let dataset = small_dataset();
    let model = train_small(&dataset);
    let acc = evaluate(&model, &dataset, Split::Test).expect("eval");
    assert!(acc > 0.5, "2-class accuracy should beat chance: {acc}");

    // signature roundtrip through disk
    let path = std::env::temp_dir().join("inferturbo-e2e.itsig");
    signature::save(&model, &path).unwrap();
    let reloaded = signature::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // the reloaded model must produce byte-identical logits
    let a = infer_reference(&model, &dataset.graph).expect("reference");
    let b = infer_reference(&reloaded, &dataset.graph).expect("reference");
    assert_eq!(a, b, "signature must preserve the model exactly");
}

#[test]
fn backends_agree_with_reference_after_training() {
    let dataset = small_dataset();
    let model = train_small(&dataset);
    let want = infer_reference(&model, &dataset.graph).expect("reference");

    let pregel = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(6),
        StrategyConfig::all().with_threshold(20),
    )
    .unwrap();
    let mr = infer_mapreduce(
        &model,
        &dataset.graph,
        ClusterSpec::mapreduce_cluster(6),
        StrategyConfig::all().with_threshold(20),
    )
    .unwrap();
    for (v, want_row) in want.iter().enumerate() {
        for (c, &wv) in want_row.iter().enumerate() {
            assert!(
                (pregel.logits[v][c] - wv).abs() < 1e-3,
                "pregel node {v} class {c}"
            );
            assert!((mr.logits[v][c] - wv).abs() < 1e-3, "mr node {v} class {c}");
        }
    }
}

#[test]
fn predictions_invariant_to_worker_count() {
    // Re-partitioning the graph must not change the math — only the cost
    // profile. (Float tolerance: combiner fold order differs per layout.)
    let dataset = small_dataset();
    let model = train_small(&dataset);
    let a = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(3),
        StrategyConfig::all().with_threshold(20),
    )
    .unwrap();
    let b = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(17),
        StrategyConfig::all().with_threshold(20),
    )
    .unwrap();
    let mut diffs = 0usize;
    for v in 0..dataset.graph.n_nodes() {
        for c in 0..model.classes() {
            if (a.logits[v][c] - b.logits[v][c]).abs() > 1e-3 {
                diffs += 1;
            }
        }
    }
    assert_eq!(diffs, 0, "worker count changed {diffs} logits");
}

#[test]
fn repeated_runs_bit_identical_across_backends() {
    let dataset = small_dataset();
    let model = train_small(&dataset);
    let strat = StrategyConfig::all().with_threshold(15);
    let p1 = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(5),
        strat,
    )
    .unwrap();
    let p2 = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(5),
        strat,
    )
    .unwrap();
    assert_eq!(p1.logits, p2.logits);
    let m1 = infer_mapreduce(
        &model,
        &dataset.graph,
        ClusterSpec::mapreduce_cluster(5),
        strat,
    )
    .unwrap();
    let m2 = infer_mapreduce(
        &model,
        &dataset.graph,
        ClusterSpec::mapreduce_cluster(5),
        strat,
    )
    .unwrap();
    assert_eq!(m1.logits, m2.logits);
}

#[test]
fn multilabel_end_to_end() {
    // PPI-style multi-label task through the whole pipeline.
    use inferturbo::graph::gen::{generate, GenConfig};
    let graph = generate(&GenConfig {
        n_nodes: 400,
        n_edges: 2400,
        feat_dim: 12,
        classes: 4,
        multilabel: Some(10),
        homophily: 0.7,
        noise: 0.6,
        seed: 5,
        ..GenConfig::default()
    });
    let split = (0..400)
        .map(|i| {
            if i % 2 == 0 {
                Split::Train
            } else {
                Split::Test
            }
        })
        .collect();
    let dataset = Dataset {
        name: "ml".into(),
        graph,
        split,
        paper_nodes: 0,
        paper_edges: 0,
    };
    let mut model = GnnModel::sage(12, 16, 2, 10, true, PoolOp::Mean, 2);
    let stats = train(
        &mut model,
        &dataset,
        &TrainConfig {
            steps: 100,
            batch_size: 32,
            fanout: Some(8),
            lr: 1e-2,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    assert!(
        stats.final_loss() < stats.initial_loss() * 0.8,
        "BCE loss should drop: {} -> {}",
        stats.initial_loss(),
        stats.final_loss()
    );
    // Learnability is asserted more strongly in inferturbo-core's unit
    // tests (micro-F1 > 0.5 on an easier config); here the claim is the
    // multilabel plumbing end to end.
    let f1 = evaluate(&model, &dataset, Split::Test).expect("eval");
    assert!(f1 > 0.25, "micro-F1 {f1}");
    // multilabel logits flow through the backends unchanged
    let out = infer_mapreduce(
        &model,
        &dataset.graph,
        ClusterSpec::mapreduce_cluster(4),
        StrategyConfig::all(),
    )
    .unwrap();
    assert!(out.logits.iter().all(|l| l.len() == 10));
}
