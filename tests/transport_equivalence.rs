//! The transport acceptance bar: the spawned-worker-process shuffle
//! backend must be **bit-identical** to the in-process default —
//! logits, byte accounting, and rendered trace bytes — at every worker
//! count, on both engines, under forced spill, and through fault
//! recovery. The only quantity allowed to differ is
//! `RunReport::wire_bytes` (zero for in-process moves, request +
//! response frames for the pipes).

use std::path::PathBuf;
use std::sync::Arc;

use inferturbo::cluster::{FaultPlan, InProcess, RecoveryPolicy, Transport, WorkerProcess};
use inferturbo::common::Parallelism;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use inferturbo::graph::Graph;
use inferturbo::obs::TraceHandle;

fn test_graph() -> Graph {
    generate(&GenConfig {
        n_nodes: 200,
        n_edges: 1200,
        feat_dim: 8,
        classes: 3,
        skew: DegreeSkew::In,
        seed: 61,
        ..GenConfig::default()
    })
}

fn model() -> GnnModel {
    GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 13)
}

/// Locate the `itworker` child binary, building it on demand: root-level
/// integration tests do not get `CARGO_BIN_EXE_itworker` (that variable is
/// only set for the defining package's own tests), and a bare
/// `cargo test --test transport_equivalence` does not build sibling bins.
fn worker_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test exe path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("itworker{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let mut cmd = std::process::Command::new(env!("CARGO"));
        cmd.args(["build", "-p", "inferturbo-cluster", "--bin", "itworker"]);
        if dir.ends_with("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("spawn cargo to build itworker");
        assert!(status.success(), "building the itworker binary failed");
        assert!(
            bin.exists(),
            "cargo succeeded but {} is missing",
            bin.display()
        );
    }
    bin
}

/// One run under `transport`: returns (logit bits, rendered trace bytes,
/// total report bytes, wire bytes, spilled bytes).
#[allow(clippy::too_many_arguments)]
fn run(
    graph: &Graph,
    model: &GnnModel,
    workers: usize,
    backend: Backend,
    transport: &Arc<dyn Transport>,
    spill_budget: Option<u64>,
    faults: Option<&str>,
) -> (Vec<Vec<u32>>, String, u64, u64, u64) {
    let trace = TraceHandle::recording();
    let mut builder = InferenceSession::builder()
        .model(model)
        .graph(graph)
        .workers(workers)
        .backend(backend)
        .transport(Arc::clone(transport))
        .trace(trace.clone());
    if let Some(bytes) = spill_budget {
        // Materialized columnar inboxes (no partial gather): the O(E·d)
        // inbox dominates residency, so a 4 KiB window actually pages.
        builder = builder
            .strategy(StrategyConfig::all().with_partial_gather(false))
            .spill_budget(bytes)
            .spill_dir(std::env::temp_dir().join("inferturbo-transport-tests"));
    }
    if let Some(spec) = faults {
        builder = builder
            .fault_plan(FaultPlan::parse(spec).expect("fault spec"))
            .recovery(RecoveryPolicy::new(1, 3));
    }
    let plan = builder.plan().expect("plan");
    let out = plan.run().expect("run");
    let bits = out
        .logits
        .iter()
        .map(|row| row.iter().map(|x| x.to_bits()).collect())
        .collect();
    (
        bits,
        trace.render(),
        out.report.total_bytes(),
        out.report.wire_bytes,
        out.report.spilled_bytes,
    )
}

#[test]
fn process_transport_is_bit_identical_on_both_backends() {
    let g = test_graph();
    let m = model();
    let local: Arc<dyn Transport> = Arc::new(InProcess);
    // One pooled child set reused across every plan in this test.
    let procs: Arc<dyn Transport> = Arc::new(WorkerProcess::with_bin(worker_bin()));
    for backend in [Backend::Pregel, Backend::MapReduce] {
        for workers in [1usize, 2, 4] {
            let want = run(&g, &m, workers, backend, &local, None, None);
            let got = run(&g, &m, workers, backend, &procs, None, None);
            assert_eq!(
                want.0, got.0,
                "{backend:?} logits diverged at {workers} workers"
            );
            assert_eq!(
                want.1, got.1,
                "{backend:?} trace bytes diverged at {workers} workers"
            );
            assert_eq!(
                want.2, got.2,
                "{backend:?} modelled byte accounting diverged at {workers} workers"
            );
            assert_eq!(want.3, 0, "in-process moves never touch the wire");
            assert!(
                got.3 > 0,
                "{backend:?} process exchange must report wire bytes at {workers} workers"
            );
        }
    }
}

#[test]
fn process_transport_is_thread_count_invariant() {
    // The determinism spine crossed with the process boundary: the same
    // worker-process run must not move a bit under different host thread
    // budgets.
    let g = test_graph();
    let m = model();
    let procs: Arc<dyn Transport> = Arc::new(WorkerProcess::with_bin(worker_bin()));
    let want = Parallelism::with(1, || run(&g, &m, 4, Backend::Pregel, &procs, None, None));
    for threads in [2usize, 4] {
        let got = Parallelism::with(threads, || {
            run(&g, &m, 4, Backend::Pregel, &procs, None, None)
        });
        assert_eq!(
            (&want.0, &want.1, want.2),
            (&got.0, &got.1, got.2),
            "process-backed run diverged at {threads} threads"
        );
    }
}

#[test]
fn forced_spill_crosses_the_process_boundary_bit_identically() {
    // A 4 KiB budget pages every merged inbox through disk. The spill
    // decision is the parent's (children merge resident and ship parts
    // back), so the spilled plane must match the in-process run exactly.
    let g = test_graph();
    let m = model();
    let local: Arc<dyn Transport> = Arc::new(InProcess);
    let procs: Arc<dyn Transport> = Arc::new(WorkerProcess::with_bin(worker_bin()));
    for workers in [2usize, 4] {
        let want = run(&g, &m, workers, Backend::Pregel, &local, Some(4096), None);
        let got = run(&g, &m, workers, Backend::Pregel, &procs, Some(4096), None);
        assert!(
            want.4 > 0,
            "4 KiB budget must actually page inbox rows at {workers} workers"
        );
        assert_eq!(
            (&want.0, &want.1, want.2, want.4),
            (&got.0, &got.1, got.2, got.4),
            "spilled run diverged at {workers} workers"
        );
    }
}

#[test]
fn fault_recovery_replays_identically_over_the_process_transport() {
    // A worker loss at superstep 1 forces a checkpoint restore and replay.
    // Seal faults fire *inside* the exchange on both backends, so the
    // recovery path — and the recovered trace — must be byte-identical.
    let g = test_graph();
    let m = model();
    let local: Arc<dyn Transport> = Arc::new(InProcess);
    let procs: Arc<dyn Transport> = Arc::new(WorkerProcess::with_bin(worker_bin()));
    for spec in ["worker:1@step:1", "seal:1@step:1"] {
        let want = run(&g, &m, 4, Backend::Pregel, &local, None, Some(spec));
        let got = run(&g, &m, 4, Backend::Pregel, &procs, None, Some(spec));
        assert!(
            want.1.contains("site=recovery"),
            "fault {spec} must engage recovery: {}",
            want.1
        );
        assert_eq!(want.0, got.0, "recovered logits diverged under {spec}");
        assert_eq!(want.1, got.1, "recovered trace diverged under {spec}");
    }
}
