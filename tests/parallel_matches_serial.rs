//! The determinism contract of `inferturbo_common::par`, enforced
//! end-to-end: `Parallelism(1)` and `Parallelism(N)` must produce the same
//! results everywhere — Pregel vertex states, MapReduce outputs, full GNN
//! inference on both backends, and every tensor kernel. Exact (bitwise) for
//! the engines and the segment reductions; 1e-5 relative for the blocked
//! GEMM, whose panel blocking is allowed (but not currently required) to
//! regroup accumulation.

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::{Parallelism, SpillPolicy, Xoshiro256};
use inferturbo::core::models::gas_impl::PoolRowAggregator;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::{generate, DegreeSkew, GenConfig};
use inferturbo::graph::Graph;
use inferturbo::pregel::{
    Combiner, FusedAggregator, MessageLayout, Outbox, PregelConfig, PregelEngine, RowsIn,
    VertexProgram,
};
use inferturbo::tensor::Matrix;

const PAR_THREADS: usize = 4;

fn test_graph(seed: u64, n_nodes: usize, n_edges: usize) -> Graph {
    generate(&GenConfig {
        n_nodes,
        n_edges,
        feat_dim: 8,
        classes: 3,
        skew: DegreeSkew::In,
        seed,
        ..GenConfig::default()
    })
}

// ---- Pregel vertex states -------------------------------------------------

/// PageRank over the generated graph's adjacency: enough supersteps and
/// message traffic to exercise shard merging, combining, and the arena.
struct PageRank {
    n: f64,
}

#[derive(Clone)]
struct PrState {
    rank: f64,
    nbrs: Vec<u64>,
}

struct SumCombiner;

impl Combiner<f32> for SumCombiner {
    fn combine(&self, acc: &mut f32, msg: f32) -> Option<f32> {
        *acc += msg;
        None
    }
}

impl VertexProgram for PageRank {
    type State = PrState;
    type Msg = f32;

    fn compute(
        &self,
        step: usize,
        _vertex: u64,
        state: &mut PrState,
        messages: Vec<f32>,
        _bcast: &dyn Fn(u64) -> Option<f32>,
        out: &mut Outbox<f32>,
    ) {
        if step > 0 {
            let sum: f64 = messages.iter().map(|&m| m as f64).sum();
            state.rank = 0.15 / self.n + 0.85 * sum;
        }
        if !state.nbrs.is_empty() {
            let share = (state.rank / state.nbrs.len() as f64) as f32;
            for &nb in &state.nbrs {
                out.send(nb, share);
            }
        }
    }

    fn combiner(&self, _step: usize) -> Option<&dyn Combiner<f32>> {
        Some(&SumCombiner)
    }
}

fn pagerank_states(g: &Graph, workers: usize, supersteps: usize) -> (Vec<u64>, u64) {
    let n = g.n_nodes();
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (&s, &d) in g.src().iter().zip(g.dst()) {
        adj[s as usize].push(d as u64);
    }
    let cfg = PregelConfig::new(ClusterSpec::test_spec(workers));
    let mut eng = PregelEngine::new(PageRank { n: n as f64 }, cfg);
    for (v, nbrs) in adj.into_iter().enumerate() {
        eng.add_vertex(
            v as u64,
            PrState {
                rank: 1.0 / n as f64,
                nbrs,
            },
        );
    }
    eng.run(supersteps).unwrap();
    let mut ranks = vec![0u64; n];
    eng.for_each_state(|id, st| ranks[id as usize] = st.rank.to_bits());
    (ranks, eng.report().total_bytes())
}

#[test]
fn pregel_states_bitwise_identical_across_thread_counts() {
    let g = test_graph(11, 400, 2400);
    for workers in [1usize, 3, 8] {
        let serial = Parallelism::with(1, || pagerank_states(&g, workers, 8));
        let parallel = Parallelism::with(PAR_THREADS, || pagerank_states(&g, workers, 8));
        assert_eq!(serial.0, parallel.0, "states diverged at {workers} workers");
        assert_eq!(
            serial.1, parallel.1,
            "byte accounting diverged at {workers} workers"
        );
    }
}

// ---- Columnar-plane Pregel states ------------------------------------------

/// Feature sum over the columnar plane: step 0 scatters each vertex's
/// dim-4 feature row (fused when `fused`), step 1 stores the aggregate.
struct ColSum {
    fused: bool,
    agg: PoolRowAggregator,
}

#[derive(Clone)]
struct ColState {
    feat: Vec<f32>,
    nbrs: Vec<u64>,
    agg: Vec<f32>,
}

impl VertexProgram for ColSum {
    type State = ColState;
    type Msg = f32; // legacy plane unused

    fn compute(
        &self,
        _step: usize,
        _vertex: u64,
        _state: &mut ColState,
        _messages: Vec<f32>,
        _b: &dyn Fn(u64) -> Option<f32>,
        _out: &mut Outbox<f32>,
    ) {
        unreachable!("columnar program");
    }

    fn compute_columnar(
        &self,
        step: usize,
        _vertex: u64,
        state: &mut ColState,
        rows: RowsIn<'_>,
        _messages: Vec<f32>,
        _b: &dyn Fn(u64) -> Option<f32>,
        out: &mut Outbox<f32>,
    ) {
        if step == 0 {
            for &nb in &state.nbrs {
                out.send_row(nb, &state.feat);
            }
            return;
        }
        let mut acc: Vec<f32> = Vec::new();
        match rows {
            RowsIn::Rows { dim, data } => {
                for chunk in data.chunks_exact(dim) {
                    if acc.is_empty() {
                        acc.extend_from_slice(chunk);
                    } else {
                        self.agg.accumulate(&mut acc, chunk);
                    }
                }
            }
            RowsIn::Fused {
                acc: facc, count, ..
            } if count > 0 => acc = facc.to_vec(),
            _ => {}
        }
        state.agg = acc;
    }

    fn message_layout(&self, step: usize) -> Option<MessageLayout> {
        (step == 0).then_some(MessageLayout { dim: 4 })
    }

    fn fused_aggregator(&self, step: usize) -> Option<&dyn FusedAggregator> {
        (self.fused && step == 0).then_some(&self.agg)
    }
}

fn columnar_states(
    g: &Graph,
    workers: usize,
    fused: bool,
    spill: Option<SpillPolicy>,
) -> (Vec<Vec<u32>>, u64, u64) {
    let n = g.n_nodes();
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (&s, &d) in g.src().iter().zip(g.dst()) {
        adj[s as usize].push(d as u64);
    }
    let cfg = PregelConfig::new(ClusterSpec::test_spec(workers)).with_spill(spill);
    let mut eng = PregelEngine::new(
        ColSum {
            fused,
            agg: PoolRowAggregator { op: PoolOp::Sum },
        },
        cfg,
    );
    for (v, nbrs) in adj.into_iter().enumerate() {
        let feat: Vec<f32> = (0..4)
            .map(|j| ((v as f32 + 1.0) * 0.13 + j as f32 * 0.41).sin())
            .collect();
        eng.add_vertex(
            v as u64,
            ColState {
                feat,
                nbrs,
                agg: Vec::new(),
            },
        );
    }
    eng.run(2).unwrap();
    let mut states = vec![Vec::new(); n];
    eng.for_each_state(|id, st| {
        states[id as usize] = st.agg.iter().map(|x| x.to_bits()).collect();
    });
    let mb = eng.report().message_bytes;
    (states, eng.report().total_bytes(), mb.columnar)
}

#[test]
fn columnar_pregel_states_bitwise_identical_across_thread_counts() {
    let g = test_graph(17, 400, 2400);
    for workers in [1usize, 3, 8] {
        for fused in [false, true] {
            let serial = Parallelism::with(1, || columnar_states(&g, workers, fused, None));
            let parallel =
                Parallelism::with(PAR_THREADS, || columnar_states(&g, workers, fused, None));
            assert_eq!(
                serial, parallel,
                "columnar states diverged at {workers} workers (fused={fused})"
            );
            assert!(serial.2 > 0, "columnar plane must carry the rows");
        }
    }
}

#[test]
fn spill_forced_columnar_states_bitwise_identical_for_every_thread_count() {
    // A 64-byte budget forces every columnar inbox — fused accumulators
    // and materialized arenas alike — through the disk path. States, byte
    // accounting, and the columnar plane totals must not move a bit
    // relative to the unconstrained in-memory run, at any thread budget.
    let g = test_graph(17, 400, 2400);
    let spill = SpillPolicy::new(std::env::temp_dir().join("inferturbo-spill-tests"), 64);
    for workers in [1usize, 3, 8] {
        for fused in [false, true] {
            let in_memory = Parallelism::with(1, || columnar_states(&g, workers, fused, None));
            for threads in [1usize, 2, PAR_THREADS] {
                let spilled = Parallelism::with(threads, || {
                    columnar_states(&g, workers, fused, Some(spill.clone()))
                });
                assert_eq!(
                    in_memory, spilled,
                    "spill diverged at {workers} workers, {threads} threads (fused={fused})"
                );
            }
        }
    }
}

// ---- Full inference on both backends --------------------------------------

fn logits_bits(out: &inferturbo::core::infer::InferenceOutput) -> Vec<Vec<u32>> {
    out.logits
        .iter()
        .map(|row| row.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn pregel_inference_bitwise_identical_across_thread_counts() {
    let g = test_graph(23, 300, 1800);
    let model = GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 7);
    for workers in [1usize, 4, 7] {
        // Both message planes: columnar (fused scatter-aggregation) and
        // the legacy per-object path.
        for columnar in [true, false] {
            let strat = StrategyConfig::all()
                .with_threshold(8)
                .with_columnar(columnar);
            let serial = Parallelism::with(1, || {
                infer_pregel(&model, &g, ClusterSpec::pregel_cluster(workers), strat).unwrap()
            });
            let parallel = Parallelism::with(PAR_THREADS, || {
                infer_pregel(&model, &g, ClusterSpec::pregel_cluster(workers), strat).unwrap()
            });
            assert_eq!(
                logits_bits(&serial),
                logits_bits(&parallel),
                "pregel logits diverged at {workers} workers (columnar={columnar})"
            );
            assert_eq!(
                serial.report.total_bytes(),
                parallel.report.total_bytes(),
                "pregel bytes diverged at {workers} workers (columnar={columnar})"
            );
            assert_eq!(
                serial.report.message_bytes, parallel.report.message_bytes,
                "pregel plane accounting diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn pregel_columnar_plane_bit_matches_legacy_plane() {
    // The fused columnar path must reproduce the legacy combiner path's
    // logits bit for bit — the engine-level guarantee, checked end-to-end
    // through the full GNN stack. Broadcast stays off: refs interleave
    // with payloads in delivery order on the legacy plane but fold after
    // the fused accumulator on the columnar plane, so with hubs the two
    // paths agree only to float tolerance, not bitwise.
    let g = test_graph(29, 300, 1800);
    let model = GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 5);
    for workers in [1usize, 4] {
        let strat = StrategyConfig::all()
            .with_broadcast(false)
            .with_threshold(8);
        let columnar =
            infer_pregel(&model, &g, ClusterSpec::pregel_cluster(workers), strat).unwrap();
        let legacy = infer_pregel(
            &model,
            &g,
            ClusterSpec::pregel_cluster(workers),
            strat.with_columnar(false),
        )
        .unwrap();
        assert_eq!(
            logits_bits(&columnar),
            logits_bits(&legacy),
            "planes diverged at {workers} workers"
        );
        assert!(columnar.report.message_bytes.columnar > 0);
        assert_eq!(legacy.report.message_bytes.columnar, 0);
    }
}

/// The out-of-core acceptance criterion: a Pregel plan whose in-memory
/// peak residency exceeds the worker memory cap OOMs without a spill
/// budget, runs to completion with one, and the spilled run's logits are
/// bit-identical to the unconstrained in-memory run at every thread
/// count. `plan.summary()` and the `RunReport` expose resident vs spilled
/// bytes as separate planes.
#[test]
fn spill_budget_lifts_the_memory_cap_with_bit_identical_logits() {
    let g = test_graph(43, 300, 2400);
    let model = GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 7);
    // Materialized columnar rows (no partial gather): the O(E·d) inbox
    // dominates residency, the shape that forces the paper's MR fallback.
    let strat = StrategyConfig::all().with_partial_gather(false);
    let plan = |spec: ClusterSpec, spill: Option<u64>| {
        let mut b = InferenceSession::builder()
            .model(&model)
            .graph(&g)
            .pregel_spec(spec)
            .strategy(strat)
            .backend(Backend::Pregel)
            .spill_dir(std::env::temp_dir().join("inferturbo-spill-tests"));
        if let Some(bytes) = spill {
            b = b.spill_budget(bytes);
        }
        b.plan().unwrap()
    };

    // Unconstrained ground truth + its measured peak residency.
    let roomy = ClusterSpec::pregel_cluster(2);
    let unconstrained = plan(roomy, None);
    let want = Parallelism::with(1, || unconstrained.run().unwrap());
    let peak = want.report.max_mem_peak();
    assert_eq!(want.report.spilled_bytes, 0);

    // One byte under the measured peak: the in-memory plan must OOM...
    let tight = roomy.with_memory(peak - 1);
    let err = plan(tight, None).run().unwrap_err();
    assert!(err.is_oom(), "expected OOM under the tightened cap: {err}");

    // ...while a spill budget pages the inbox out and completes, at
    // bit-identical logits, for every thread budget.
    let spilling = plan(tight, Some(2048));
    assert!(
        spilling.estimate().pregel_spilled_worker_bytes > 0,
        "estimate must predict the spilled plane"
    );
    assert!(
        spilling.estimate().pregel_peak_worker_bytes
            < unconstrained.estimate().pregel_peak_worker_bytes,
        "spilling must shrink the predicted resident peak"
    );
    let summary = spilling.summary().to_string();
    assert!(summary.contains("[spill]"), "{summary}");
    assert!(summary.contains("spill.paged_at_peak_bytes"), "{summary}");
    for threads in [1usize, 2, PAR_THREADS] {
        let got = Parallelism::with(threads, || spilling.run().unwrap());
        assert_eq!(
            logits_bits(&want),
            logits_bits(&got),
            "spilled logits diverged at {threads} threads"
        );
        assert!(got.report.spilled_bytes > 0, "disk plane must be exercised");
        assert!(
            got.report.max_mem_peak() < peak,
            "resident peak must fit under the cap"
        );
    }
}

#[test]
fn mapreduce_inference_bitwise_identical_across_thread_counts() {
    let g = test_graph(37, 300, 1800);
    let model = GnnModel::sage(8, 12, 2, 3, false, PoolOp::Mean, 9);
    for workers in [1usize, 4, 7] {
        for columnar in [true, false] {
            let strat = StrategyConfig::all()
                .with_threshold(8)
                .with_columnar(columnar);
            let serial = Parallelism::with(1, || {
                infer_mapreduce(&model, &g, ClusterSpec::mapreduce_cluster(workers), strat).unwrap()
            });
            let parallel = Parallelism::with(PAR_THREADS, || {
                infer_mapreduce(&model, &g, ClusterSpec::mapreduce_cluster(workers), strat).unwrap()
            });
            assert_eq!(
                logits_bits(&serial),
                logits_bits(&parallel),
                "mapreduce logits diverged at {workers} workers (columnar={columnar})"
            );
            assert_eq!(
                serial.report.total_bytes(),
                parallel.report.total_bytes(),
                "mapreduce bytes diverged at {workers} workers (columnar={columnar})"
            );
            assert_eq!(
                serial.report.message_bytes, parallel.report.message_bytes,
                "mapreduce plane accounting diverged at {workers} workers"
            );
        }
    }
}

// ---- Tensor kernels --------------------------------------------------------

fn random_matrix(rng: &mut Xoshiro256, rows: usize, cols: usize, sparsity: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if sparsity > 0 && rng.below(sparsity) == 0 {
            0.0
        } else {
            rng.next_f32() * 2.0 - 1.0
        }
    })
}

#[test]
fn gemm_kernels_match_across_thread_counts() {
    let mut rng = Xoshiro256::seed_from_u64(99);
    // Outputs exceed the kernels' parallel threshold and straddle several
    // row-block boundaries.
    let a = random_matrix(&mut rng, 300, 140, 3);
    let b = random_matrix(&mut rng, 140, 130, 0);
    let c = random_matrix(&mut rng, 300, 130, 4);
    let d = random_matrix(&mut rng, 70, 140, 0);
    let serial = Parallelism::with(1, || (a.matmul(&b), a.matmul_tn(&c), a.matmul_nt(&d)));
    let parallel = Parallelism::with(PAR_THREADS, || {
        (a.matmul(&b), a.matmul_tn(&c), a.matmul_nt(&d))
    });
    // 1e-5 relative tolerance: blocked GEMM may regroup accumulation.
    for (which, (s, p)) in [
        ("matmul", (&serial.0, &parallel.0)),
        ("matmul_tn", (&serial.1, &parallel.1)),
        ("matmul_nt", (&serial.2, &parallel.2)),
    ] {
        assert_eq!(s.shape(), p.shape());
        for (x, y) in s.data().iter().zip(p.data()) {
            assert!(
                (x - y).abs() <= 1e-5 * x.abs().max(1.0),
                "{which}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn segment_kernels_exact_across_thread_counts() {
    // Segments come from a generated graph's destination index — the real
    // Gather shape of the paper's Fig. 3.
    let g = test_graph(51, 600, 9000);
    let n = g.n_nodes();
    let mut rng = Xoshiro256::seed_from_u64(7);
    let msgs = random_matrix(&mut rng, g.n_edges(), 16, 5);
    let seg: Vec<u32> = g.dst().to_vec();
    let serial = Parallelism::with(1, || {
        (
            msgs.segment_sum(&seg, n),
            msgs.segment_mean(&seg, n),
            msgs.segment_max(&seg, n),
        )
    });
    let parallel = Parallelism::with(PAR_THREADS, || {
        (
            msgs.segment_sum(&seg, n),
            msgs.segment_mean(&seg, n),
            msgs.segment_max(&seg, n),
        )
    });
    // Exact for sum/mean/max: per-segment accumulation order is identical.
    assert_eq!(serial.0.data(), parallel.0.data(), "segment_sum");
    assert_eq!(serial.1.data(), parallel.1.data(), "segment_mean");
    assert_eq!(
        serial.2 .0.data(),
        parallel.2 .0.data(),
        "segment_max values"
    );
    assert_eq!(serial.2 .1, parallel.2 .1, "segment_max argmax");
}
