//! The Pregel engine is a general graph-processing system, not a GNN
//! one-trick: this example runs PageRank with a sum-combiner on it,
//! mirroring the paper's lineage from Pregel/PowerGraph.
//!
//! ```sh
//! cargo run --release --example pagerank_pregel
//! ```

use inferturbo::cluster::ClusterSpec;
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::{Csr, Dataset};
use inferturbo::pregel::{Combiner, Outbox, PregelConfig, PregelEngine, VertexProgram};

struct PageRank {
    n: f64,
    damping: f64,
}

#[derive(Clone)]
struct State {
    rank: f64,
    nbrs: Vec<u64>,
}

struct Sum;

impl Combiner<f32> for Sum {
    fn combine(&self, acc: &mut f32, msg: f32) -> Option<f32> {
        *acc += msg;
        None
    }
}

impl VertexProgram for PageRank {
    type State = State;
    type Msg = f32;

    fn compute(
        &self,
        step: usize,
        _vertex: u64,
        state: &mut State,
        messages: Vec<f32>,
        _bcast: &dyn Fn(u64) -> Option<f32>,
        out: &mut Outbox<f32>,
    ) {
        if step > 0 {
            let sum: f64 = messages.iter().map(|&m| m as f64).sum();
            state.rank = (1.0 - self.damping) / self.n + self.damping * sum;
        }
        if !state.nbrs.is_empty() {
            let share = (state.rank / state.nbrs.len() as f64) as f32;
            for &nb in &state.nbrs {
                out.send(nb, share);
            }
        }
        out.add_flops(messages.len() as f64 + 2.0);
    }

    fn combiner(&self, _step: usize) -> Option<&dyn Combiner<f32>> {
        Some(&Sum)
    }
}

fn main() {
    let dataset = Dataset::power_law(50_000, 500_000, DegreeSkew::In, 3);
    let g = &dataset.graph;
    println!("{}", dataset.summary());

    let out_csr = Csr::out_of(g);
    let program = PageRank {
        n: g.n_nodes() as f64,
        damping: 0.85,
    };
    let mut engine = PregelEngine::new(program, PregelConfig::new(ClusterSpec::pregel_cluster(16)));
    for v in 0..g.n_nodes() as u32 {
        engine.add_vertex(
            v as u64,
            State {
                rank: 1.0 / g.n_nodes() as f64,
                nbrs: out_csr.neighbors(v).iter().map(|&u| u as u64).collect(),
            },
        );
    }
    engine.run(21).expect("pagerank run");

    let mut ranks: Vec<(u64, f64)> = Vec::with_capacity(g.n_nodes());
    engine.for_each_state(|id, s| ranks.push((id, s.rank)));
    ranks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 10 nodes by PageRank (hubs of the power-law graph):");
    let in_deg = g.in_degrees();
    for (id, rank) in ranks.iter().take(10) {
        println!(
            "  node {id:>6}  rank {rank:.6}  in-degree {}",
            in_deg[*id as usize]
        );
    }
    let report = engine.report();
    println!(
        "\n20 iterations, modelled wall {:.2}s, total shuffle {}",
        report.total_wall_secs(),
        inferturbo::common::stats::human_bytes(report.total_bytes() as f64)
    );
}
