//! Quickstart: train a GraphSAGE model mini-batch, export its signature,
//! then serve full-graph inference through the session API — plan once,
//! run many.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::signature;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::train::{evaluate, train, TrainConfig};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::{Dataset, Split};

fn main() {
    // 1. A synthetic attributed graph: 20k nodes, 120k edges, 8 latent
    //    classes, power-law in-degree. Labels exist on a small train split.
    let dataset = Dataset::power_law(20_000, 120_000, DegreeSkew::In, 7);
    println!("{}", dataset.summary());

    // 2. A 2-layer GraphSAGE (mean aggregation) in the GAS abstraction.
    let feat = dataset.graph.node_feat_dim();
    let classes = dataset.graph.labels().num_classes() as usize;
    let mut model = GnnModel::sage(feat, 32, 2, classes, false, PoolOp::Mean, 1);

    // 3. Mini-batch training on sampled k-hop neighbourhoods — the
    //    traditional training pipeline the paper keeps.
    let stats = train(
        &mut model,
        &dataset,
        &TrainConfig {
            steps: 120,
            batch_size: 64,
            fanout: Some(10),
            ..TrainConfig::default()
        },
    )
    .expect("training");
    println!(
        "training loss: {:.4} -> {:.4}",
        stats.initial_loss(),
        stats.final_loss()
    );
    println!(
        "test accuracy: {:.3}",
        evaluate(&model, &dataset, Split::Test).expect("evaluation")
    );

    // 4. Export the layer-wise signature (weights + GAS annotations) and
    //    reload it — this file is what a production deployment ships.
    let path = std::env::temp_dir().join("quickstart.itsig");
    signature::save(&model, &path).expect("save signature");
    let model = signature::load(&path).expect("load signature");
    println!("signature round-tripped through {}", path.display());

    // 5. Plan full-graph inference once: the plan owns the shadow-mirrored
    //    node records, the hub sets, a cost estimate for both backends,
    //    and — with Backend::Auto — the backend decision itself (Pregel
    //    while the predicted resident state fits worker memory, MapReduce
    //    beyond it: the paper's §IV-A trade-off, encoded).
    //    The shuffle transport is a plug: `InProcess` (the default) moves
    //    sealed shards by reference; `WorkerProcess` runs the same
    //    exchange over spawned worker processes, bit-identically.
    let plan = InferenceSession::builder()
        .model(&model)
        .graph(&dataset.graph)
        .workers(32)
        .strategy(StrategyConfig::all())
        .backend(Backend::Auto)
        .transport(std::sync::Arc::new(inferturbo::core::InProcess))
        .plan()
        .expect("inference plan");
    println!("\n{}\n", plan.summary());

    // 6. Execute. Repeated runs reuse every planned artifact (records,
    //    pooled engine scratch) and are bit-identical — no sampling
    //    anywhere, the paper's consistency property.
    let first = plan.run().expect("inference");
    let again = plan.run().expect("inference");
    assert_eq!(first.logits, again.logits, "runs are bit-identical");
    println!(
        "{:?} backend: modelled wall {:.2}s, {:.1} cpu*min, {} shuffled",
        plan.backend(),
        first.report.total_wall_secs(),
        first.report.resource_cpu_min(),
        inferturbo::common::stats::human_bytes(first.report.total_bytes() as f64),
    );

    // 7. The serving path: same plan, fresh features (e.g. a nightly
    //    embedding refresh) — planning work is never repeated.
    let fresh: Vec<Vec<f32>> = (0..dataset.graph.n_nodes() as u32)
        .map(|v| dataset.graph.node_feat(v).iter().map(|x| x * 0.9).collect())
        .collect();
    let refreshed = plan.run_with_features(&fresh).expect("refreshed run");
    let changed = first
        .predictions()
        .iter()
        .zip(refreshed.predictions())
        .filter(|(a, b)| **a != *b)
        .count();
    println!(
        "feature refresh flipped {changed}/{} predictions",
        fresh.len()
    );

    // 8. Serving traffic instead of single runs? `examples/serving.rs`
    //    drives this same pipeline through `inferturbo::serve::GnnServer`:
    //    cached plans, micro-batched feature-refresh requests, and
    //    fleet-wide memory admission control.
    println!("\nnext: cargo run --release --example serving");
}
