//! Quickstart: train a GraphSAGE model mini-batch, export its signature,
//! and run full-graph inference on both backends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inferturbo::cluster::ClusterSpec;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::signature;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::train::{evaluate, train, TrainConfig};
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::{Dataset, Split};

fn main() {
    // 1. A synthetic attributed graph: 20k nodes, 120k edges, 8 latent
    //    classes, power-law in-degree. Labels exist on a small train split.
    let dataset = Dataset::power_law(20_000, 120_000, DegreeSkew::In, 7);
    println!("{}", dataset.summary());

    // 2. A 2-layer GraphSAGE (mean aggregation) in the GAS abstraction.
    let feat = dataset.graph.node_feat_dim();
    let classes = dataset.graph.labels().num_classes() as usize;
    let mut model = GnnModel::sage(feat, 32, 2, classes, false, PoolOp::Mean, 1);

    // 3. Mini-batch training on sampled k-hop neighbourhoods — the
    //    traditional training pipeline the paper keeps.
    let stats = train(
        &mut model,
        &dataset,
        &TrainConfig {
            steps: 120,
            batch_size: 64,
            fanout: Some(10),
            ..TrainConfig::default()
        },
    )
    .expect("training");
    println!(
        "training loss: {:.4} -> {:.4}",
        stats.initial_loss(),
        stats.final_loss()
    );
    println!(
        "test accuracy: {:.3}",
        evaluate(&model, &dataset, Split::Test)
    );

    // 4. Export the layer-wise signature (weights + GAS annotations) and
    //    reload it — this file is what a production deployment ships.
    let path = std::env::temp_dir().join("quickstart.itsig");
    signature::save(&model, &path).expect("save signature");
    let model = signature::load(&path).expect("load signature");
    println!("signature round-tripped through {}", path.display());

    // 5. Full-graph inference on both backends, with every power-law
    //    strategy enabled. No sampling anywhere: predictions are
    //    bit-identical run to run and identical across backends.
    let pregel = infer_pregel(
        &model,
        &dataset.graph,
        ClusterSpec::pregel_cluster(32),
        StrategyConfig::all(),
    )
    .expect("pregel inference");
    let mr = infer_mapreduce(
        &model,
        &dataset.graph,
        ClusterSpec::mapreduce_cluster(32),
        StrategyConfig::all(),
    )
    .expect("mapreduce inference");

    let agree = pregel
        .predictions()
        .iter()
        .zip(mr.predictions())
        .filter(|(a, b)| **a == *b)
        .count();
    println!(
        "backends agree on {agree}/{} predictions",
        dataset.graph.n_nodes()
    );
    println!(
        "pregel: modelled wall {:.2}s, {:.1} cpu*min, {} shuffled",
        pregel.report.total_wall_secs(),
        pregel.report.resource_cpu_min(),
        inferturbo::common::stats::human_bytes(pregel.report.total_bytes() as f64),
    );
    println!(
        "mapreduce: modelled wall {:.2}s, {:.1} cpu*min, {} shuffled",
        mr.report.total_wall_secs(),
        mr.report.resource_cpu_min(),
        inferturbo::common::stats::human_bytes(mr.report.total_bytes() as f64),
    );
}
