//! Fraud detection over a transaction graph with extreme hubs — the
//! paper's motivating financial scenario.
//!
//! A payments graph has hub accounts (merchants, mule accounts) with huge
//! degree. This example shows (a) why sampling is unacceptable here —
//! the same account can flip between "fraud" and "legit" across runs —
//! and (b) how the power-law strategies keep full-graph inference balanced.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::stats;
use inferturbo::core::consistency::audit_sampling;
use inferturbo::core::infer_mapreduce;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::train::{train, TrainConfig};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::Dataset;

fn main() {
    // Transaction graph: out-degree skewed (hub accounts fan out to many
    // counterparties), 2 classes: fraud / legit.
    let dataset = Dataset::power_law(30_000, 400_000, DegreeSkew::Out, 99);
    let (max_in, max_out) = dataset.graph.max_degrees();
    println!("{}", dataset.summary());
    println!("hub accounts: max in-degree {max_in}, max out-degree {max_out}");

    let feat = dataset.graph.node_feat_dim();
    let mut model = GnnModel::sage(feat, 32, 2, 2, false, PoolOp::Mean, 5);
    train(
        &mut model,
        &dataset,
        &TrainConfig {
            steps: 80,
            batch_size: 48,
            fanout: Some(10),
            ..TrainConfig::default()
        },
    )
    .expect("training");

    // --- why sampling is disqualified for risk scoring -------------------
    let audit_targets: Vec<u32> = (0..1500).collect();
    let audit = audit_sampling(&model, &dataset.graph, &audit_targets, 10, 8, 0).expect("audit");
    println!(
        "\nsampled inference (fanout 10, 8 runs): {:.1}% of accounts change class between runs",
        audit.unstable_fraction() * 100.0
    );
    println!("histogram by #distinct classes: {:?}", audit.hist);

    // --- full-graph inference: strategies vs stragglers -------------------
    let spec = ClusterSpec::mapreduce_cluster(64);
    for (name, strat) in [
        ("no strategies ", StrategyConfig::none()),
        ("all strategies", StrategyConfig::all()),
    ] {
        let out = infer_mapreduce(&model, &dataset.graph, spec, strat).expect("inference");
        let times: Vec<f64> = out
            .report
            .worker_totals()
            .iter()
            .map(|t| t.busy_secs)
            .collect();
        let frauds = out.predictions().iter().filter(|&&c| c == 1).count();
        println!(
            "{name}: flagged {frauds} accounts; worker time max/mean {:.2}x, bytes {}",
            stats::max(&times) / stats::mean(&times).max(1e-12),
            stats::human_bytes(out.report.total_bytes() as f64),
        );
    }
    println!("\nsame predictions, flatter workers, less traffic — no information dropped.");
}
