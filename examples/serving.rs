//! Serving fraud scores from a long-lived GNN server — the traffic-facing
//! layer the paper's production deployment implies.
//!
//! A payments graph is scored continuously: feature snapshots refresh
//! periodically (account activity aggregates), and downstream systems fire
//! small "score these accounts" requests against the newest snapshot. This
//! example replays a deterministic traffic trace through
//! [`inferturbo::serve::GnnServer`] and prints the server report: how far
//! micro-batching compressed requests into runs, what planning was
//! amortised, and what admission control did when an oversized plan
//! arrived.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use inferturbo::common::Xoshiro256;
use inferturbo::core::models::{GnnModel, PoolOp};
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::train::{train, TrainConfig};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::Dataset;
use inferturbo::obs::{inspect, TraceHandle};
use inferturbo::serve::{
    AdmissionPolicy, FeatureSnapshot, GnnServer, RateLimitConfig, ScoreRequest, ServeConfig,
};

fn main() {
    // 1. A transaction graph with hub accounts and a quickly-trained
    //    2-class (fraud / legit) GraphSAGE model.
    let dataset = Dataset::power_law(8_000, 60_000, DegreeSkew::Out, 42);
    println!("{}", dataset.summary());
    let feat = dataset.graph.node_feat_dim();
    let mut model = GnnModel::sage(feat, 32, 2, 2, false, PoolOp::Mean, 5);
    train(
        &mut model,
        &dataset,
        &TrainConfig {
            steps: 40,
            batch_size: 32,
            fanout: Some(10),
            ..TrainConfig::default()
        },
    )
    .expect("training");

    // 2. Size the fleet budget around the production plan so the admission
    //    demo below is meaningful: room for the 16-worker plan, not for a
    //    fat 2-worker one.
    let probe = InferenceSession::builder()
        .model(&model)
        .graph(&dataset.graph)
        .workers(16)
        .plan()
        .expect("probe plan");
    let budget = probe.estimate().pregel_peak_worker_bytes * 3 / 2;

    // The flight recorder: every request's path through admission, the
    // limiter, the batcher and the engine lands in one deterministic
    // trace, summarised per tenant in step 9.
    let trace = TraceHandle::recording();
    let mut server = GnnServer::new(ServeConfig {
        max_batch: 8,
        max_wait: 2,
        memory_budget: budget,
        policy: AdmissionPolicy::Reject,
        // Overload plane (step 7): tenanted bursts pay a 4-token bucket
        // refilling 1/tick and degrade to cached rows when it runs dry;
        // untenanted trace traffic never touches the limiter. The cache
        // keeps two full refreshes of this 8k-node graph resident.
        rate_limit: Some(RateLimitConfig::degrade(4, 1)),
        response_cache: 16 * 1024,
        trace: trace.clone(),
        // Shuffle transport for every plan this server builds. Backends
        // are bit-identical, so swapping in `WorkerProcess` here changes
        // no response byte — only `RunReport::wire_bytes`.
        transport: Some(std::sync::Arc::new(inferturbo::core::InProcess)),
        ..ServeConfig::default()
    });
    server.register_model(1, &model).unwrap();
    server.register_graph(1, &dataset.graph).unwrap();

    // 3. Three feature refreshes (e.g. hourly activity aggregates): one
    //    shared snapshot Arc each — requests naming the same snapshot
    //    coalesce into one full-graph run.
    let n = dataset.graph.n_nodes();
    let snapshots: Vec<FeatureSnapshot> = (0..3)
        .map(|epoch| {
            let drift = 1.0 - 0.04 * epoch as f32;
            Arc::new(
                (0..n as u32)
                    .map(|v| {
                        dataset
                            .graph
                            .node_feat(v)
                            .iter()
                            .map(|x| x * drift)
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect();

    // 4. Replay a deterministic trace: 30 logical ticks, a burst of
    //    scoring requests per tick, always against the newest snapshot.
    let mut rng = Xoshiro256::seed_from_u64(7);
    let base = ScoreRequest::new(1, 1).with_workers(16);
    let mut tickets = Vec::new();
    for tick in 0..30usize {
        let snapshot = &snapshots[tick / 10];
        for _ in 0..(1 + rng.below(5)) {
            let targets: Vec<u32> = (0..(1 + rng.below(4)))
                .map(|_| rng.below(n as u64) as u32)
                .collect();
            let req = base
                .clone()
                .with_snapshot(Arc::clone(snapshot))
                .with_targets(targets);
            tickets.push(server.submit(req).expect("submit"));
        }
        server.tick();
    }
    server.drain();

    // 5. Collect responses (FIFO order) and count flagged accounts.
    let responses = server.drain_ready();
    assert_eq!(responses.len(), tickets.len());
    let mut scored = 0usize;
    let mut flagged = 0usize;
    for resp in &responses {
        let logits = resp.logits().expect("served");
        scored += logits.len();
        flagged += logits
            .iter()
            .filter(|l| GnnModel::predict_class(l) == 1)
            .count();
    }
    println!(
        "\ntrace: {} requests scored {} accounts, {} flagged as fraud",
        responses.len(),
        scored,
        flagged
    );

    // 6. Admission control: a 2-worker plan concentrates the whole graph
    //    on two fat workers; its peak residency does not fit what is left
    //    of the fleet budget, so it is rejected while the admitted plan
    //    keeps serving.
    let oversized = ScoreRequest::new(1, 1)
        .with_workers(2)
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    match server.submit(oversized.clone()) {
        Err(e) => println!("\noversized plan: {e}"),
        Ok(_) => println!("\noversized plan unexpectedly admitted"),
    }

    // 6b. Out-of-core rescue: a materialized-gather plan (sender-side
    //     fusion off) hauls an O(E·d) inbox, so its in-memory residency is
    //     inbox-dominated and also fails admission — but an 8 KiB spill
    //     window pages that inbox to disk, shrinking the resident estimate
    //     below what is left of the fleet budget. Same graph, same model,
    //     bit-identical scores; only the residency model moved.
    let materialized = ScoreRequest::new(1, 1)
        .with_workers(32)
        .with_strategy(StrategyConfig::all().with_partial_gather(false))
        .with_backend(Backend::Pregel)
        .with_targets(vec![0]);
    match server.submit(materialized.clone()) {
        Err(e) => println!("materialized in-memory plan: {e}"),
        Ok(_) => println!("materialized in-memory plan unexpectedly admitted"),
    }
    let spill_budget = 8 * 1024;
    match server.submit(materialized.with_spill_budget(spill_budget)) {
        Ok(t) => {
            server.drain();
            let served = server.take(t).is_some_and(|r| r.logits().is_some());
            println!(
                "spilled plan ({spill_budget} B resident window): admitted, served = {served}"
            );
        }
        Err(e) => println!("spilled plan unexpectedly rejected: {e}"),
    }

    // 7. Overload drill: a noisy downstream tenant fires a burst against a
    //    4-token bucket under the Degrade policy. The cache already holds
    //    every scored row from the trace's runs, so the overflow is served
    //    stale — bit-identical to the fresh rows — instead of being
    //    dropped; a 0-tick deadline request expires before buying a batch
    //    slot.
    let burst_snapshot = &snapshots[2];
    let noisy = base
        .clone()
        .with_tenant(42)
        .with_snapshot(Arc::clone(burst_snapshot));
    let mut burst = Vec::new();
    for i in 0..8u32 {
        burst.push(
            server
                .submit(noisy.clone().with_targets(vec![i]))
                .expect("degrade policy always resolves"),
        );
    }
    burst.push(
        server
            .submit(
                base.clone()
                    .with_snapshot(Arc::clone(burst_snapshot))
                    .with_deadline(0)
                    .with_targets(vec![0]),
            )
            .expect("submit"),
    );
    server.tick();
    server.drain();
    let (mut fresh, mut stale, mut expired) = (0, 0, 0);
    for t in burst {
        let resp = server.take(t).expect("overload resolves, it never drops");
        match () {
            _ if resp.is_stale() => stale += 1,
            _ if resp.logits().is_some() => fresh += 1,
            _ => expired += 1,
        }
    }
    println!(
        "\noverload burst: {fresh} served fresh, {stale} served stale from the \
         response cache, {expired} deadline-expired"
    );

    // 8. The server report.
    println!("\n{}", server.stats());
    println!(
        "admission: {} plan(s) resident, ~{} of {} B budget in use",
        server.admission().plans(),
        server.admission().resident_bytes(),
        server.admission().budget()
    );

    // 9. The per-tenant trace summary (the same view `itrace --tenants`
    //    renders from a saved trace file): the untenanted replay traffic
    //    and tenant 42's degraded burst, each tracked submit → terminal.
    println!(
        "
{}",
        inspect::render_tenant_summary(&trace.events())
    );
}
