//! Choosing a backend: Pregel (fast, memory-hungry, reserved) vs
//! MapReduce (slower, streaming, elastic) — the paper's §IV-C trade-off.
//!
//! Runs the same trained GAT on both backends across worker counts and
//! prints the time/resource/memory frontier, including the OOM boundary
//! that pushes large graphs toward the batch backend.
//!
//! ```sh
//! cargo run --release --example backend_tradeoff
//! ```

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::stats;
use inferturbo::core::models::GnnModel;
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::core::{infer_mapreduce, infer_pregel};
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::Dataset;

fn main() {
    let dataset = Dataset::power_law(40_000, 400_000, DegreeSkew::In, 11);
    println!("{}\n", dataset.summary());
    let feat = dataset.graph.node_feat_dim();
    // Untrained weights are fine here: cost profiles don't depend on them.
    let model = GnnModel::gat(feat, 32, 4, 2, 2, false, 3);

    println!(
        "{:<10} {:>8} {:>10} {:>14} {:>12}",
        "backend", "workers", "wall (s)", "cpu*min", "peak mem"
    );
    for workers in [8usize, 32, 128] {
        let pregel = infer_pregel(
            &model,
            &dataset.graph,
            ClusterSpec::pregel_cluster(workers),
            StrategyConfig::all(),
        )
        .expect("pregel");
        println!(
            "{:<10} {:>8} {:>10.2} {:>14.2} {:>12}",
            "pregel",
            workers,
            pregel.report.total_wall_secs(),
            pregel.report.resource_cpu_min(),
            stats::human_bytes(pregel.report.max_mem_peak() as f64),
        );
        let mr = infer_mapreduce(
            &model,
            &dataset.graph,
            ClusterSpec::mapreduce_cluster(workers),
            StrategyConfig::all(),
        )
        .expect("mapreduce");
        println!(
            "{:<10} {:>8} {:>10.2} {:>14.2} {:>12}",
            "mapreduce",
            workers,
            mr.report.total_wall_secs(),
            mr.report.resource_cpu_min(),
            stats::human_bytes(mr.report.max_mem_peak() as f64),
        );
    }

    // The Pregel backend must hold each partition's vertex state and inbox
    // in memory. Shrink worker memory until it OOMs; the MapReduce backend
    // streams groups from external storage and survives the same cap.
    println!("\nmemory pressure (8 workers, shrinking RAM):");
    for mem_mb in [256u64, 64, 16] {
        let cap = mem_mb * (1 << 20);
        let pregel = infer_pregel(
            &model,
            &dataset.graph,
            ClusterSpec::pregel_cluster(8).with_memory(cap),
            StrategyConfig::all(),
        );
        let mr = infer_mapreduce(
            &model,
            &dataset.graph,
            ClusterSpec::mapreduce_cluster(8).with_memory(cap),
            StrategyConfig::all(),
        );
        let verdict = |r: &Result<_, inferturbo::common::Error>| match r {
            Ok(_) => "ok".to_string(),
            Err(e) if e.is_oom() => "OOM".to_string(),
            Err(e) => format!("error: {e}"),
        };
        println!(
            "  {mem_mb:>4} MB/worker: pregel {:<4} mapreduce {}",
            verdict(&pregel.map(|_| ())),
            verdict(&mr.map(|_| ()))
        );
    }
    println!("\nthe batch backend keeps working below the graph-processing backend's floor —");
    println!("exactly the paper's cost/efficiency trade-off between the two.");
}
