//! Choosing a backend: Pregel (fast, memory-hungry, reserved) vs
//! MapReduce (slower, streaming, elastic) — the paper's §IV-C trade-off,
//! now *encoded* by the session API: `Backend::Auto` compares the plan's
//! predicted peak per-worker residency against a memory budget and picks
//! the backend for you.
//!
//! Runs the same GAT through explicit backend choices across worker
//! counts, then sweeps the memory budget to show the auto-selection flip
//! at the predicted OOM boundary.
//!
//! ```sh
//! cargo run --release --example backend_tradeoff
//! ```

use inferturbo::cluster::ClusterSpec;
use inferturbo::common::stats;
use inferturbo::core::models::GnnModel;
use inferturbo::core::session::{Backend, InferenceSession};
use inferturbo::core::strategy::StrategyConfig;
use inferturbo::graph::gen::DegreeSkew;
use inferturbo::graph::Dataset;

fn main() {
    let dataset = Dataset::power_law(40_000, 400_000, DegreeSkew::In, 11);
    println!("{}\n", dataset.summary());
    let feat = dataset.graph.node_feat_dim();
    // Untrained weights are fine here: cost profiles don't depend on them.
    let model = GnnModel::gat(feat, 32, 4, 2, 2, false, 3);

    println!(
        "{:<10} {:>8} {:>10} {:>14} {:>12}",
        "backend", "workers", "wall (s)", "cpu*min", "peak mem"
    );
    for workers in [8usize, 32, 128] {
        for backend in [Backend::Pregel, Backend::MapReduce] {
            let out = InferenceSession::builder()
                .model(&model)
                .graph(&dataset.graph)
                .workers(workers)
                .strategy(StrategyConfig::all())
                .backend(backend)
                .plan()
                .expect("plan")
                .run()
                .expect("run");
            println!(
                "{:<10} {:>8} {:>10.2} {:>14.2} {:>12}",
                format!("{backend:?}").to_lowercase(),
                workers,
                out.report.total_wall_secs(),
                out.report.resource_cpu_min(),
                stats::human_bytes(out.report.max_mem_peak() as f64),
            );
        }
    }

    // The Pregel backend must hold each partition's vertex state and inbox
    // in memory; the plan predicts that residency before anything runs.
    // Sweep the budget across the prediction: Backend::Auto flips to the
    // streaming MapReduce backend exactly where Pregel would stop fitting.
    let probe = InferenceSession::builder()
        .model(&model)
        .graph(&dataset.graph)
        .workers(8)
        .strategy(StrategyConfig::all())
        .plan()
        .expect("plan");
    let predicted = probe.estimate().pregel_peak_worker_bytes;
    println!(
        "\npredicted pregel residency at 8 workers: {}/worker",
        stats::human_bytes(predicted as f64)
    );
    println!("{}\n", probe.summary());

    // Sweep points: comfortably above the Pregel floor, exactly at it,
    // below it (MapReduce takes over and streams within budget), and
    // finally below even the batch backend's own streaming floor (largest
    // single key group) — nothing survives there, by design.
    let mr_floor = probe.estimate().mapreduce_peak_worker_bytes;
    println!("auto-selection across memory budgets (8 workers):");
    for budget in [
        predicted * 4,
        predicted,
        // Between the two floors, clamped strictly below the Pregel
        // prediction so this row always demonstrates the MapReduce flip.
        (predicted / 2).max(mr_floor * 2).min(predicted - 1),
        mr_floor / 2,
    ] {
        let plan = InferenceSession::builder()
            .model(&model)
            .graph(&dataset.graph)
            .workers(8)
            .strategy(StrategyConfig::all())
            .backend(Backend::Auto)
            .memory_budget(budget)
            .plan()
            .expect("plan");
        // Run on a spec capped at the same budget: the choice is only as
        // good as its prediction, so let the engines' OOM checks judge it.
        let capped = InferenceSession::builder()
            .model(&model)
            .graph(&dataset.graph)
            .pregel_spec(ClusterSpec::pregel_cluster(8).with_memory(budget))
            .mapreduce_spec(ClusterSpec::mapreduce_cluster(8).with_memory(budget))
            .strategy(StrategyConfig::all())
            .backend(plan.backend())
            .plan()
            .expect("plan");
        let verdict = match capped.run() {
            Ok(out) => format!(
                "ok   wall {:>7.2}s  peak {}",
                out.report.total_wall_secs(),
                stats::human_bytes(out.report.max_mem_peak() as f64)
            ),
            Err(e) if e.is_oom() => "OOM".to_string(),
            Err(e) => format!("error: {e}"),
        };
        println!(
            "  budget {:>9}/worker -> {:<9?} {}",
            stats::human_bytes(budget as f64),
            plan.backend(),
            verdict
        );
    }
    println!("\nthe batch backend keeps working below the graph-processing backend's floor —");
    println!("exactly the paper's cost/efficiency trade-off, now picked automatically.");
}
