#!/usr/bin/env bash
# Parallel-speedup benchmark harness.
#
# Runs the engine + kernel hot paths at Parallelism(1) and Parallelism(N)
# and writes BENCH_parallel.json (ops/s + speedup per bench, plus the
# engine-speedup geomean) so future PRs have a perf trajectory to compare
# against. Also runs the criterion-style micro benches at both thread
# counts for the detailed per-kernel view.
#
# Usage: scripts/bench.sh [THREADS] [OUT_JSON]
#   THREADS  parallel thread count (default: all host cores)
#   OUT_JSON output path (default: BENCH_parallel.json)
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-$(nproc)}"
OUT="${2:-BENCH_parallel.json}"
SECS="${BENCH_SECS:-0.5}"

echo "== building (release) =="
cargo build --release --offline -p inferturbo-bench

echo "== parbench: serial vs ${THREADS} threads -> ${OUT} =="
cargo run --release --offline -p inferturbo-bench --bin parbench -- \
    --threads "${THREADS}" --out "${OUT}" --secs "${SECS}"

echo "== micro benches at 1 thread =="
INFERTURBO_THREADS=1 BENCH_SAMPLE_SECS="${SECS}" \
    cargo bench --offline -p inferturbo-bench --bench kernels
echo "== micro benches at ${THREADS} threads =="
INFERTURBO_THREADS="${THREADS}" BENCH_SAMPLE_SECS="${SECS}" \
    cargo bench --offline -p inferturbo-bench --bench kernels

echo "done; see ${OUT}"
