#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints (deny warnings), the full test suite,
# and a smoke run of the parallel benchmark binary so every workload is
# exercised end-to-end on every run.
#
# Every workspace member — including the serving layer (crates/serve) —
# rides the workspace-wide gates below; `parbench --smoke` additionally
# exercises the serving path end-to-end (`serve/throughput_3k` submits,
# batches and drains real requests through GnnServer every run), the
# overload-resilience path (`serve/overload_3k` rate-limits a tenant
# spike and asserts stale service and deadline expiry actually engage),
# and the out-of-core path (`engine/pregel_sage2_3k_spill` runs under the
# forced spill budget below and asserts bytes actually paged through
# disk).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== itlint --check (static gates vs lint/baseline.toml) =="
# Workspace determinism/panic-freedom gates (crates/lint): wall-clock
# reads, panics in library paths, hash-order iteration, ad-hoc threads,
# env reads. Fails on any violation above the committed ratcheting
# baseline; burn debt with `itlint --write-baseline` after fixing.
cargo run -p inferturbo_lint --release --quiet -- --check

echo "== cargo clippy --workspace --all-targets (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --examples =="
# Examples are the documented entry points; drift fails the gate.
cargo build --examples

echo "== cargo doc --workspace --no-deps (warnings denied) =="
# Broken intra-doc links and malformed rustdoc fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== cargo test --workspace (forced fault schedule) =="
# Re-runs the whole suite with a worker loss injected at superstep 1 of
# every 2+-worker Pregel run. Env auto-arming (FaultPlan::from_env +
# RecoveryPolicy::default) turns every engine test into a
# checkpoint/recovery gate; tests that set an explicit fault schedule or
# recovery policy are immune by design.
INFERTURBO_FAULTS=worker:1@step:1 cargo test --workspace -q

echo "== engine + determinism tests (spawned-worker-process transport) =="
# Re-runs the engine determinism suites with the shuffle transport forced
# to the spawned-worker-process backend (both engines default their
# transport from INFERTURBO_TRANSPORT). Every inter-superstep/inter-round
# exchange crosses a real process boundary over pipes; logits and traces
# must stay bit-identical to the in-process default. The `itworker` child
# binary was built by the workspace test legs above; tests that pin a
# transport explicitly (e.g. transport_equivalence) are immune by design.
INFERTURBO_TRANSPORT=process cargo test -q \
    --test parallel_matches_serial --test columnar_fused \
    --test end_to_end --test failure_injection

echo "== serving tests (forced overload knobs) =="
# Re-runs the serving suite with an aggressive Degrade-policy rate limit
# and deadline clamp armed into every default-constructed ServeConfig
# (ServeConfig::default reads INFERTURBO_OVERLOAD). Untenanted requests
# bypass the limiter and the clamp only tightens deadlines a request
# already carries, so the knob is inert for existing traffic — the leg
# proves the overload plane can be armed fleet-wide without perturbing a
# single served answer. Tests that pin rate_limit/deadline_clamp
# explicitly are immune by design.
INFERTURBO_OVERLOAD=bucket:1,refill:1,deadline:1 \
    cargo test -q --test serving

echo "== serving + trace tests (flight recorder armed) =="
# Re-runs the serving and trace-determinism suites with the flight
# recorder armed fleet-wide (SessionBuilder / ServeConfig defaults read
# INFERTURBO_TRACE via the sanctioned crates/obs arming hook). Recording
# every superstep, round and ticket lifecycle must not perturb a single
# served answer; tests that pass an explicit TraceHandle are unaffected
# by design.
INFERTURBO_TRACE=1 cargo test -q --test serving --test trace_determinism

echo "== parbench --smoke (forced spill budget) =="
cargo build --release -p inferturbo-bench
# One short measurement per bench; never committed as the perf baseline
# (scripts/bench.sh produces that). The tiny --spill-budget forces the
# engine/pregel_sage2_3k_spill entry through the disk path on every gate.
./target/release/parbench --smoke --spill-budget 4096 \
    --out target/BENCH_parallel_smoke.json >/dev/null

echo "CI OK"
